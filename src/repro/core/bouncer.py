"""The Bouncer admission control policy (paper §3, Algorithm 1).

For every arriving query ``Q`` of type ``t``, Bouncer computes:

* an estimate of the mean queue wait time the query will experience::

      ewt_mean = sum(count(type) * pt_mean(type) for type in queue) / P    (Eq. 2)

  where ``count(type)`` is the number of queries of that type currently in
  the FIFO queue, ``pt_mean(type)`` is the mean processing time from the
  type's histogram, and ``P`` is the number of query engine processes; and

* percentile response-time estimates for each percentile ``p`` the type's
  SLO constrains::

      ert_p(Q) = ewt_mean + pt_p(t)                                (Eqs. 3-4)

and rejects ``Q`` iff any estimate exceeds its SLO target (Algorithm 1).
The paper uses p50 and p90; this implementation supports any percentile set
carried by the SLO (p99 etc. — listed by the authors as a straightforward
extension) and an alternative ``all`` decision mode for ablations.

Processing-time distributions are maintained per type in dual-buffer
histograms (§3 footnote 4) plus one *general* histogram over all types.
Cold starts are handled per Appendix A: while a type's histogram holds too
few samples, estimates are made from the general histogram against the
default (catch-all) SLO, and during traffic lulls stale per-type snapshots
are retained rather than replaced by empty ones.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import ConfigurationError
from .context import HostContext
from .dual_buffer import DualBufferHistogram, SlidingWindowHistogram
from .histogram import BucketLayout, HistogramSnapshot
from .policy import AdmissionPolicy
from .slo import LatencySLO, SLORegistry
from .types import AdmissionResult, Query, RejectReason

#: Either histogram backend satisfies the same record/estimate surface.
HistogramBackend = Union[DualBufferHistogram, SlidingWindowHistogram]

#: Reject when ANY percentile estimate exceeds its target (Algorithm 1).
DECISION_ANY = "any"
#: Reject only when ALL percentile estimates exceed their targets
#: (a laxer variant evaluated in the ablation benches).
DECISION_ALL = "all"

#: Histogram maintenance via atomically swapped non-overlapping windows
#: (the paper's production design, §3 footnote 4).
HISTOGRAMS_DUAL_BUFFER = "dual-buffer"
#: Histogram maintenance over a sliding window of overlapping slices (the
#: alternative the paper lists as future work, §7).
HISTOGRAMS_SLIDING_WINDOW = "sliding-window"


@dataclass
class BouncerConfig:
    """Tunables for :class:`BouncerPolicy`.

    Parameters
    ----------
    slos:
        Per-query-type latency SLOs with a catch-all default (§3).
    histogram_interval:
        Dual-buffer swap period in seconds (the paper's LIquid deployment
        publishes every second).
    min_samples:
        A type's snapshot must hold at least this many observations to be
        trusted; below it the policy falls back to the general histogram and
        default SLO (Appendix A warm-up behaviour).
    retain_min_samples:
        Passed through to the dual buffers: an interval with fewer samples
        keeps the previous (stale) snapshot instead of publishing
        (Appendix A traffic-lull behaviour).
    bootstrap_samples:
        Publish a histogram's very first snapshot as soon as it has this
        many samples instead of waiting out a full interval, shortening the
        cold-start window (0 disables).
    decision_mode:
        :data:`DECISION_ANY` (the paper's Algorithm 1) or
        :data:`DECISION_ALL`.
    histogram_mode:
        :data:`HISTOGRAMS_DUAL_BUFFER` (the paper's design) or
        :data:`HISTOGRAMS_SLIDING_WINDOW` (its future-work alternative:
        observations age out slice by slice instead of all at once).
    histogram_window:
        Sliding-window span in seconds (sliding-window mode only); slices
        are ``histogram_interval`` long.
    layout:
        Optional shared histogram bucket layout.
    fast_path:
        Enable the decision fast path: epoch-cached snapshot statistics and
        the incrementally maintained Eq. 2 occupancy state (see
        docs/performance.md).  Decisions are bit-identical with it on or
        off; ``False`` keeps the naive recompute-everything path, which the
        perf harness uses as its baseline.
    debug_check:
        Cross-check every fast-path wait estimate against the naive
        recomputation and raise ``AssertionError`` on any disagreement.
        Debugging/property-test aid; meaningful only with ``fast_path``.
    """

    slos: SLORegistry
    histogram_interval: float = 1.0
    min_samples: int = 20
    retain_min_samples: int = 10
    bootstrap_samples: int = 100
    decision_mode: str = DECISION_ANY
    histogram_mode: str = HISTOGRAMS_DUAL_BUFFER
    histogram_window: float = 5.0
    layout: Optional[BucketLayout] = None
    fast_path: bool = True
    debug_check: bool = False

    def __post_init__(self) -> None:
        if self.decision_mode not in (DECISION_ANY, DECISION_ALL):
            raise ConfigurationError(
                f"decision_mode must be {DECISION_ANY!r} or {DECISION_ALL!r},"
                f" got {self.decision_mode!r}")
        if self.histogram_mode not in (HISTOGRAMS_DUAL_BUFFER,
                                       HISTOGRAMS_SLIDING_WINDOW):
            raise ConfigurationError(
                f"histogram_mode must be {HISTOGRAMS_DUAL_BUFFER!r} or "
                f"{HISTOGRAMS_SLIDING_WINDOW!r}, got "
                f"{self.histogram_mode!r}")
        if self.histogram_window < self.histogram_interval:
            raise ConfigurationError(
                "histogram_window must be >= histogram_interval")
        if self.min_samples < 0:
            raise ConfigurationError("min_samples must be >= 0")
        if self.histogram_interval <= 0:
            raise ConfigurationError("histogram_interval must be > 0")


class BouncerEstimate:
    """The evidence behind one Bouncer decision (exposed for observability).

    ``cold_start`` flags that the general histogram and default SLO were
    used because the type's own histogram was insufficiently populated.
    One instance is allocated per decision, hence ``__slots__``.
    """

    __slots__ = ("qtype", "wait_mean", "response", "slo", "cold_start")

    def __init__(self, qtype: str, wait_mean: float,
                 response: Optional[Dict[float, float]] = None,
                 slo: Optional[LatencySLO] = None,
                 cold_start: bool = False) -> None:
        self.qtype = qtype
        self.wait_mean = wait_mean
        self.response: Dict[float, float] = (
            response if response is not None else {})
        self.slo = slo
        self.cold_start = cold_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BouncerEstimate(qtype={self.qtype!r}, "
                f"wait_mean={self.wait_mean!r}, response={self.response!r}, "
                f"cold_start={self.cold_start!r})")


#: Dictionary key for the general histogram in the fast path's per-backend
#: caches.  Starts with a NUL byte, which cannot appear in a real query-type
#: string arriving over any of the repo's frontends.
_GENERAL_KEY = "\x00general"


class _SnapshotStats:
    """Memoized derived statistics for one published snapshot epoch.

    ``mean`` is computed on construction; percentile vectors are filled in
    lazily per requested percentile tuple.  An entry is valid exactly as
    long as the publisher keeps republishing the same epoch.
    """

    __slots__ = ("epoch", "mean", "percentiles")

    def __init__(self, epoch: int, mean: float) -> None:
        self.epoch = epoch
        self.mean = mean
        self.percentiles: Dict[Tuple[float, ...], List[float]] = {}


class _Contribution:
    """One queued type's term in the incrementally maintained Eq. 2 sum."""

    __slots__ = ("mean", "used_general", "epoch")

    def __init__(self, mean: float, used_general: bool, epoch: int) -> None:
        self.mean = mean
        self.used_general = used_general
        self.epoch = epoch


class FastPathStats:
    """Counters describing fast-path effectiveness (telemetry surface)."""

    __slots__ = ("cache_hits", "cache_misses", "eq2_recomputes")

    def __init__(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.eq2_recomputes = 0


class BouncerPolicy(AdmissionPolicy):
    """SLO-driven admission control (the paper's primary contribution)."""

    name = "bouncer"

    def __init__(self, ctx: HostContext, config: BouncerConfig) -> None:
        super().__init__()
        self._ctx = ctx
        self._config = config
        self._slos = config.slos
        self._hists: Dict[str, HistogramBackend] = {}
        self._general = self._new_histogram()
        self._mode_any = config.decision_mode == DECISION_ANY
        # Unified cold-start threshold: a snapshot is trusted only with at
        # least max(min_samples, 1) observations, so an empty snapshot is
        # never trusted even with min_samples=0 (both Eq. 2 and the
        # percentile path use this same bound).
        self._min_trusted = max(config.min_samples, 1)
        self._fast = config.fast_path
        self._debug = config.debug_check
        self.fast_path_stats = FastPathStats()
        # Fast-path state, guarded by _fast_lock (always acquired before any
        # histogram-backend lock, never while holding the queue-view lock —
        # listeners fire after that lock is released).
        self._fast_lock = threading.Lock()
        self._queued: Dict[str, int] = {}
        self._means: Dict[str, _Contribution] = {}
        self._stat_cache: Dict[str, _SnapshotStats] = {}
        self._next_due = math.inf
        self._general_deps = 0
        self._general_epoch_used = -1
        self._watch: Set[str] = set()
        self._sum_dirty = False
        # Memoized Eq. 2 result: valid until a queue event, a refresh
        # trigger, or a publish boundary — exact because it is the very
        # value the dot product produced, merely reused.
        self._wait_cache: Optional[float] = None
        if self._fast:
            ctx.queue.subscribe(self._on_queue_event)

    # -- construction helpers -------------------------------------------
    def _new_histogram(self) -> HistogramBackend:
        if self._config.histogram_mode == HISTOGRAMS_SLIDING_WINDOW:
            return SlidingWindowHistogram(
                self._ctx.clock,
                window=self._config.histogram_window,
                step=self._config.histogram_interval,
                layout=self._config.layout)
        return DualBufferHistogram(
            self._ctx.clock,
            interval=self._config.histogram_interval,
            min_samples=self._config.retain_min_samples,
            bootstrap_samples=self._config.bootstrap_samples,
            layout=self._config.layout)

    def _histogram_for(self, qtype: str) -> HistogramBackend:
        hist = self._hists.get(qtype)
        if hist is None:
            hist = self._new_histogram()
            self._hists[qtype] = hist
        return hist

    # -- observability ----------------------------------------------------
    @property
    def config(self) -> BouncerConfig:
        return self._config

    @property
    def slos(self) -> SLORegistry:
        return self._slos

    def processing_snapshot(self, qtype: str) -> HistogramSnapshot:
        """Published processing-time snapshot for a type (tests/metrics)."""
        return self._histogram_for(qtype).snapshot()

    def general_snapshot(self) -> HistogramSnapshot:
        """Published snapshot of the general (all-types) histogram."""
        return self._general.snapshot()

    # -- state transfer (Appendix A's pre-populated-histogram deployment) --
    def export_state(self) -> dict:
        """Serialize the published histograms to a JSON-friendly dict.

        Appendix A discusses "deploying the system along with
        pre-populated histograms containing query processing times from
        previous installations"; this is the capture side.  Only the
        published (read-side) snapshots are exported — the in-flight write
        buffers are transient by design.
        """
        state = {"general": self._general.snapshot().to_dict(),
                 "types": {}}
        for qtype, hist in self._hists.items():
            snapshot = hist.snapshot()
            if not snapshot.is_empty:
                state["types"][qtype] = snapshot.to_dict()
        return state

    def import_state(self, state: dict) -> None:
        """Preload histograms exported from a previous installation.

        Requires dual-buffer histogram mode (the paper's design); the
        preloaded snapshots serve estimates until live data replaces them,
        skipping the cold-start window entirely.
        """
        if self._config.histogram_mode != HISTOGRAMS_DUAL_BUFFER:
            raise ConfigurationError(
                "state import requires dual-buffer histograms")
        general = state.get("general")
        if general is not None:
            snapshot = HistogramSnapshot.from_dict(general)
            if not snapshot.is_empty:
                self._general.preload(snapshot)
        for qtype, payload in state.get("types", {}).items():
            snapshot = HistogramSnapshot.from_dict(payload)
            if not snapshot.is_empty:
                self._histogram_for(qtype).preload(snapshot)
        self.invalidate_estimates()

    # -- estimation (Eqs. 2-4) -------------------------------------------
    def estimate_wait_mean(self) -> float:
        """Eq. 2: expected mean queue wait for a newly accepted query.

        With the fast path enabled, the per-type occupancy and means are
        maintained incrementally (queue-view subscription + publish-epoch
        invalidation) and this reduces to one multiply-add per *distinct*
        queued type, instead of a histogram-snapshot walk per queued type.
        Both paths are bit-identical; ``debug_check`` verifies that.
        """
        if not self._fast:
            return self._estimate_wait_mean_naive()
        with self._fast_lock:
            wait = self._fast_wait_mean_locked()
        if self._debug:
            naive = self._estimate_wait_mean_naive()
            if naive != wait:
                raise AssertionError(
                    f"fast-path Eq. 2 diverged: fast={wait!r} "
                    f"naive={naive!r}")
        return wait

    def _estimate_wait_mean_naive(self) -> float:
        """The original recompute-everything Eq. 2 (fast-path baseline)."""
        occupancy = self._ctx.queue.occupancy()
        if not occupancy:
            return 0.0
        general_mean: Optional[float] = None
        total = 0.0
        for qtype, count in occupancy.items():
            snap = self._histogram_for(qtype).snapshot()
            if snap.count >= self._min_trusted:
                mean = snap.mean()
            else:
                if general_mean is None:
                    general_mean = self._general.snapshot().mean()
                mean = general_mean
            total += count * mean
        return total / self._ctx.parallelism

    def _fast_wait_mean_locked(self) -> float:
        """Eq. 2 from the incrementally maintained state."""
        if not self._queued:
            return 0.0
        now = self._ctx.clock.now()
        if (self._sum_dirty or now >= self._next_due
                or len(self._means) != len(self._queued)):
            self._refresh_means_locked()
        if self._watch:
            self._service_watch_locked()
            if self._sum_dirty:
                self._refresh_means_locked()
        if self._wait_cache is not None:
            # No term and no count has changed since the last computation
            # (every mutation path clears the memo): reuse it verbatim.
            return self._wait_cache
        total = 0.0
        means = self._means
        for qtype, count in self._queued.items():
            total += count * means[qtype].mean
        wait = total / self._ctx.parallelism
        self._wait_cache = wait
        return wait

    def estimate(self, qtype: str) -> BouncerEstimate:
        """Full percentile response-time estimate for an incoming type.

        Applies the Appendix A cold-start fallback: with a cold per-type
        histogram, percentiles come from the general histogram and the SLO
        compared against is the catch-all default.
        """
        wait_mean = self.estimate_wait_mean()
        own = self._histogram_for(qtype).snapshot()
        cold = own.count < self._min_trusted
        if cold:
            snap = self._general.snapshot()
            slo = self._slos.default
        else:
            snap = own
            slo = self._slos.for_type(qtype)
        estimate = BouncerEstimate(qtype=qtype, wait_mean=wait_mean,
                                   slo=slo, cold_start=cold)
        percentiles = slo.percentiles
        if snap.is_empty:
            # Nothing measured anywhere yet: estimates are just the queue
            # wait, which errs toward acceptance (deliberate leniency).
            for p in percentiles:
                estimate.response[p] = wait_mean
            return estimate
        if self._fast:
            values = self._fast_percentiles(qtype, own, cold, snap,
                                            percentiles)
        else:
            values = snap.percentiles(percentiles)
        # ``slo.percentiles`` is already ascending, matching ``values``.
        for p, value in zip(percentiles, values):
            estimate.response[p] = wait_mean + value
        return estimate

    def _fast_percentiles(self, qtype: str, own: HistogramSnapshot,
                          cold: bool, snap: HistogramSnapshot,
                          percentiles: Sequence[float]) -> List[float]:
        """Epoch-cached ``snap.percentiles`` plus staleness bookkeeping.

        The snapshot touches above may themselves have published a new
        view (e.g. an externally forced swap); if the arriving type backs a
        term of the cached Eq. 2 sum with a different epoch, mark the sum
        dirty so the *next* estimate refreshes it.  (The time- and
        bootstrap-driven publishes are already caught before this point by
        ``_next_due`` / the bootstrap watch, so this is a backstop for
        out-of-band mutation.)
        """
        with self._fast_lock:
            contrib = self._means.get(qtype)
            if contrib is not None:
                if contrib.used_general:
                    if own.count >= self._min_trusted:
                        self._sum_dirty = True
                elif contrib.epoch != own.epoch:
                    self._sum_dirty = True
            if (cold and self._general_deps
                    and snap.epoch != self._general_epoch_used):
                self._sum_dirty = True
            entry = self._stat_entry_locked(
                _GENERAL_KEY if cold else qtype, snap)
            ptuple = tuple(percentiles)
            values = entry.percentiles.get(ptuple)
            if values is None:
                values = snap.percentiles(percentiles)
                entry.percentiles[ptuple] = values
            return values

    # -- fast-path maintenance -------------------------------------------
    def _on_queue_event(self, qtype: str, delta: int) -> None:
        """Queue-view subscription: mirror occupancy incrementally."""
        with self._fast_lock:
            self._wait_cache = None
            if delta > 0:
                count = self._queued.get(qtype)
                if count is not None:
                    self._queued[qtype] = count + 1
                else:
                    self._queued[qtype] = 1
                    if not self._sum_dirty:
                        # (A pending refresh recomputes every term anyway.)
                        self._means[qtype] = self._contribution_locked(qtype)
            else:
                count = self._queued.get(qtype)
                if count is None:
                    # Deliveries raced past the count updates (threaded
                    # runtime); resynchronize from the authoritative view.
                    self._queued = dict(self._ctx.queue.occupancy())
                    self._sum_dirty = True
                elif count > 1:
                    self._queued[qtype] = count - 1
                else:
                    del self._queued[qtype]
                    contrib = self._means.pop(qtype, None)
                    if contrib is not None and contrib.used_general:
                        self._general_deps -= 1
                        if self._general_deps == 0:
                            self._general_epoch_used = -1

    def _stat_entry_locked(self, key: str,
                           snap: HistogramSnapshot) -> _SnapshotStats:
        """Per-backend memo of derived stats, keyed on the publish epoch."""
        stats = self.fast_path_stats
        entry = self._stat_cache.get(key)
        if entry is None or entry.epoch != snap.epoch:
            entry = _SnapshotStats(snap.epoch, snap.mean())
            self._stat_cache[key] = entry
            stats.cache_misses += 1
        else:
            stats.cache_hits += 1
        return entry

    def _contribution_locked(self, qtype: str) -> _Contribution:
        """Compute one type's Eq. 2 term and fold in its refresh triggers."""
        hist = self._histogram_for(qtype)
        snap = hist.snapshot()
        self._next_due = min(self._next_due, hist.next_publish_due())
        if snap.count >= self._min_trusted:
            entry = self._stat_entry_locked(qtype, snap)
            return _Contribution(entry.mean, False, snap.epoch)
        gsnap = self._general.snapshot()
        gentry = self._stat_entry_locked(_GENERAL_KEY, gsnap)
        if self._general_deps:
            if gsnap.epoch != self._general_epoch_used:
                # Another term was computed against an older general view.
                self._sum_dirty = True
        else:
            self._general_epoch_used = gsnap.epoch
        self._general_deps += 1
        self._next_due = min(self._next_due,
                             self._general.next_publish_due())
        if hist.bootstrap_pending:
            self._watch.add(qtype)
        if self._general.bootstrap_pending:
            self._watch.add(_GENERAL_KEY)
        return _Contribution(gentry.mean, True, gsnap.epoch)

    def _refresh_means_locked(self) -> None:
        """Slow path: recompute every queued type's Eq. 2 term.

        Runs on publish boundaries, bootstrap publishes, sliding-window
        content changes, and resynchronization — i.e. exactly when a cached
        term might no longer match what the naive walk would compute.  The
        snapshots it touches are a subset of the ones the naive path
        touches on every single decision, so lazy swaps and bootstrap
        publishes happen at the same instants in both modes.
        """
        self.fast_path_stats.eq2_recomputes += 1
        self._sum_dirty = False
        self._wait_cache = None
        self._next_due = math.inf
        self._general_deps = 0
        self._general_epoch_used = -1
        means: Dict[str, _Contribution] = {}
        general_entry: Optional[_SnapshotStats] = None
        general_epoch = -1
        general_deps = 0
        for qtype in self._queued:
            hist = self._histogram_for(qtype)
            snap = hist.snapshot()
            self._next_due = min(self._next_due, hist.next_publish_due())
            if snap.count >= self._min_trusted:
                means[qtype] = _Contribution(
                    self._stat_entry_locked(qtype, snap).mean,
                    False, snap.epoch)
            else:
                if general_entry is None:
                    gsnap = self._general.snapshot()
                    general_entry = self._stat_entry_locked(
                        _GENERAL_KEY, gsnap)
                    general_epoch = gsnap.epoch
                means[qtype] = _Contribution(general_entry.mean, True,
                                             general_epoch)
                general_deps += 1
                if hist.bootstrap_pending:
                    self._watch.add(qtype)
        if general_deps:
            self._next_due = min(self._next_due,
                                 self._general.next_publish_due())
            if self._general.bootstrap_pending:
                self._watch.add(_GENERAL_KEY)
        self._means = means
        self._general_deps = general_deps
        self._general_epoch_used = general_epoch

    def _service_watch_locked(self) -> None:
        """Poke watched backends so pending bootstrap publishes fire.

        Bootstrap publishes are sample-driven, not time-driven, so
        ``_next_due`` cannot anticipate them; instead, completions note
        backends nearing their bootstrap and this touches them on the next
        decision — the same instant the naive path's walk would have.  Only
        backends the naive walk would touch (queued types; the general
        histogram when a term depends on it) are poked.
        """
        for key in list(self._watch):
            if key == _GENERAL_KEY:
                if not self._general_deps:
                    # No Eq. 2 term depends on the general view; if one
                    # appears later, _contribution_locked re-adds the watch.
                    self._watch.discard(key)
                    continue
                backend: HistogramBackend = self._general
            else:
                if key not in self._queued:
                    # Not queued -> no term to go stale; an enqueue takes a
                    # fresh snapshot (and re-watches) anyway.
                    self._watch.discard(key)
                    continue
                backend = self._histogram_for(key)
            snap = backend.snapshot()
            if not backend.bootstrap_pending:
                self._watch.discard(key)
            if key == _GENERAL_KEY:
                if snap.epoch != self._general_epoch_used:
                    self._sum_dirty = True
            else:
                contrib = self._means.get(key)
                if contrib is not None:
                    if contrib.used_general:
                        if snap.count >= self._min_trusted:
                            self._sum_dirty = True
                    elif contrib.epoch != snap.epoch:
                        self._sum_dirty = True

    def invalidate_estimates(self) -> None:
        """Drop all cached estimator state.

        Call after mutating a policy-owned histogram out of band (e.g.
        ``force_swap`` in a test, or :meth:`import_state`); the next
        decision recomputes from the live snapshots.
        """
        if not self._fast:
            return
        with self._fast_lock:
            self._stat_cache.clear()
            self._sum_dirty = True
            self._wait_cache = None

    # -- the decision (Algorithm 1) ----------------------------------------
    def _decide(self, query: Query) -> AdmissionResult:
        estimate = self.estimate(query.qtype)
        slo = estimate.slo
        assert slo is not None
        exceeded = 0
        constrained = 0
        for percentile, target in slo.items():
            constrained += 1
            if estimate.response.get(percentile, 0.0) > target:
                exceeded += 1
        if self._mode_any:
            reject = exceeded > 0
        else:
            reject = constrained > 0 and exceeded == constrained
        if reject:
            return AdmissionResult.reject(RejectReason.SLO_ESTIMATE,
                                          estimates=dict(estimate.response))
        return AdmissionResult.accept(estimates=dict(estimate.response))

    # -- framework hooks ----------------------------------------------------
    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        """Point 3: record the processing time in the type's histogram.

        Every completion also feeds the general histogram, which backs the
        cold-start fallback (Appendix A).  With the fast path on, the
        record also updates invalidation hints: sliding-window backends
        make records visible immediately (so any dependent Eq. 2 term goes
        stale now), while dual-buffer backends only change at a publish —
        the one sample-driven publish (cold-start bootstrap) is tracked via
        the bootstrap watch.
        """
        hist = self._histogram_for(query.qtype)
        hist.record(processing_time)
        self._general.record(processing_time)
        if not self._fast:
            return
        if hist.records_visible_immediately:
            with self._fast_lock:
                if query.qtype in self._queued or self._general_deps:
                    self._sum_dirty = True
        elif hist.bootstrap_pending or self._general.bootstrap_pending:
            # Watch only backends a cached Eq. 2 term depends on; any other
            # backend gets a fresh snapshot (and a new watch, if still
            # pending) from _contribution_locked when its type is enqueued.
            with self._fast_lock:
                if hist.bootstrap_pending and query.qtype in self._queued:
                    self._watch.add(query.qtype)
                if self._general.bootstrap_pending and self._general_deps:
                    self._watch.add(_GENERAL_KEY)
