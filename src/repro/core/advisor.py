"""SLO configuration advisor (paper Appendix B.2).

Appendix B.2 describes how operators actually configure Bouncer: measure
each query type's percentile response times under realistic conditions
(work they do anyway for customers), add headroom, and — because "multiple
query types often share the same SLO", with ratios "as high as 20:1" —
group the types into a manageable set of SLO *classes* rather than
maintaining one SLO per type.

This module automates that workflow:

* :func:`propose_targets` — per-type SLO targets from profiled latency
  samples plus a headroom factor;
* :func:`group_into_classes` — 1-D agglomerative grouping of types whose
  targets are within a tolerance ratio, each class adopting its loosest
  member's targets (so no member's measured latency loses headroom);
* :func:`propose_registry` — the end-to-end step producing a ready
  :class:`~repro.core.slo.SLORegistry`.

The advisor consumes plain ``{qtype: [response_time_samples]}`` data, so
it works with a :class:`~repro.sim.report.SimulationReport`, a
:class:`~repro.runtime.loadgen.LoadResult`, or production logs alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from .._stats import percentile
from ..exceptions import ConfigurationError
from .slo import LatencySLO, SLORegistry

#: Default SLO percentiles (the paper's choice; see Appendix B.1).
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0)
#: Default headroom multiplier over the measured percentile.
DEFAULT_HEADROOM = 1.5
#: Two types may share a class when all their targets are within this
#: multiplicative tolerance of each other.
DEFAULT_TOLERANCE = 2.0


@dataclass
class SLOClass:
    """One proposed SLO shared by several query types."""

    slo: LatencySLO
    members: List[str] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SLOClass({self.slo!r}, members={self.members})"


def propose_targets(samples: Mapping[str, Sequence[float]],
                    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                    headroom: float = DEFAULT_HEADROOM,
                    min_samples: int = 50
                    ) -> Dict[str, Dict[float, float]]:
    """Per-type SLO targets: measured percentile x headroom.

    Types with fewer than ``min_samples`` observations are skipped — a
    target set from a handful of samples would be noise (the operator
    should profile longer, or let the type ride the default SLO).
    """
    if headroom < 1.0:
        raise ConfigurationError(
            f"headroom must be >= 1 (got {headroom}); an SLO below the "
            f"measured latency would reject the type's typical traffic")
    if not percentiles:
        raise ConfigurationError("need at least one percentile")
    targets: Dict[str, Dict[float, float]] = {}
    for qtype, values in samples.items():
        if len(values) < min_samples:
            continue
        ordered = sorted(values)
        targets[qtype] = {
            p: percentile(ordered, p) * headroom for p in percentiles}
    return targets


def group_into_classes(targets: Mapping[str, Mapping[float, float]],
                       tolerance: float = DEFAULT_TOLERANCE
                       ) -> List[SLOClass]:
    """Group per-type targets into shared SLO classes (Appendix B.2).

    Types are sorted by their primary (lowest-percentile) target and
    greedily merged while every percentile's target stays within
    ``tolerance`` x the class seed's.  Each class adopts the loosest
    member targets per percentile, so every member keeps at least its own
    headroom.
    """
    if tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be >= 1, got {tolerance}")
    if not targets:
        return []
    percentiles = None
    for qtype, mapping in targets.items():
        ps = tuple(sorted(mapping))
        if percentiles is None:
            percentiles = ps
        elif ps != percentiles:
            raise ConfigurationError(
                f"all types must share the same percentile set; "
                f"{qtype!r} has {ps}, expected {percentiles}")
    primary = percentiles[0]
    ordered = sorted(targets, key=lambda q: targets[q][primary])

    classes: List[SLOClass] = []
    seed: Dict[float, float] = {}
    loosest: Dict[float, float] = {}
    members: List[str] = []

    def flush() -> None:
        if members:
            classes.append(SLOClass(slo=LatencySLO(dict(loosest)),
                                    members=list(members)))

    for qtype in ordered:
        current = targets[qtype]
        fits = members and all(
            current[p] <= seed[p] * tolerance for p in percentiles)
        if fits:
            members.append(qtype)
            for p in percentiles:
                loosest[p] = max(loosest[p], current[p])
        else:
            flush()
            seed = dict(current)
            loosest = dict(current)
            members = [qtype]
    flush()
    return classes


def propose_registry(samples: Mapping[str, Sequence[float]],
                     percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                     headroom: float = DEFAULT_HEADROOM,
                     tolerance: float = DEFAULT_TOLERANCE,
                     min_samples: int = 50,
                     default_multiplier: float = 2.0) -> SLORegistry:
    """Profiled samples in, deployable :class:`SLORegistry` out.

    The catch-all default SLO is the loosest class's targets times
    ``default_multiplier`` — permissive enough that brand-new query types
    are serviceable before an operator classifies them (Appendix B.2's
    onboarding argument).
    """
    if default_multiplier < 1.0:
        raise ConfigurationError("default_multiplier must be >= 1")
    targets = propose_targets(samples, percentiles, headroom, min_samples)
    if not targets:
        raise ConfigurationError(
            "no query type had enough samples to propose SLOs")
    classes = group_into_classes(targets, tolerance)
    loosest = classes[-1].slo
    default = LatencySLO({p: loosest.target(p) * default_multiplier
                          for p in loosest.percentiles})
    registry = SLORegistry(default=default)
    for slo_class in classes:
        for qtype in slo_class.members:
            registry.register(qtype, slo_class.slo)
    return registry
