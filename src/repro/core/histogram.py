"""Log-bucketed latency histograms with percentile queries.

Bouncer "adopts the natural approach of maintaining approximations for these
distributions in histograms, one per query type" (paper §3).  This module
provides that histogram: values are assigned to exponentially-growing
buckets (constant *relative* error, like HdrHistogram), which suits latency
data spanning microseconds to seconds.

Two classes are exposed:

* :class:`LatencyHistogram` — a mutable recorder.
* :class:`HistogramSnapshot` — an immutable view with ``mean()`` and
  ``percentile()`` used on the policy's read path.  Snapshots are what the
  dual-buffer publisher (:mod:`repro.core.dual_buffer`) hands to Bouncer.
"""

from __future__ import annotations

import math
import struct
from array import array
from bisect import bisect_left
from itertools import accumulate
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ._compat import numpy as _np

#: Minimum number of percentile targets before the numpy ``searchsorted``
#: path beats a per-target ``bisect_left`` on the cached cumulative list.
#: Measured on the default 471-bucket layout: one vectorized call carries
#: ~3.5us of fixed overhead (target-list conversion + dispatch) against
#: ~0.7us per bisect, so the crossover sits near six targets.  Below the
#: threshold the pure-python path is both faster and the one the scalar
#: admission hot path (two SLO percentiles) already exercises.
NUMPY_MIN_TARGETS = 6

#: Fixed-size header of the binary snapshot wire form: the three layout
#: parameters (bucket edges are derived, not shipped), the publish epoch,
#: the observation count, the value sum, and the bucket-array length.
#: Little-endian so readers and writers agree across processes regardless
#: of platform defaults; the dense int64 count array follows immediately.
SNAPSHOT_WIRE_HEADER = struct.Struct("<dddqqdi")

#: Default smallest distinguishable latency: 1 microsecond.
DEFAULT_MIN_VALUE = 1e-6
#: Default largest representable latency: 100 seconds.  Larger values clamp.
DEFAULT_MAX_VALUE = 100.0
#: Default per-bucket growth factor; relative quantization error ~= 4%.
DEFAULT_GROWTH = 1.04


class BucketLayout:
    """Shared bucket geometry for a histogram family.

    Buckets are ``[min_value * growth**i, min_value * growth**(i+1))``.
    Values below ``min_value`` land in bucket 0; values at or above
    ``max_value`` land in the last bucket.  Layouts are immutable and two
    histograms can be merged only if they share a layout.
    """

    __slots__ = ("min_value", "max_value", "growth", "num_buckets",
                 "_log_min", "_log_growth", "_bounds")

    def __init__(self, min_value: float = DEFAULT_MIN_VALUE,
                 max_value: float = DEFAULT_MAX_VALUE,
                 growth: float = DEFAULT_GROWTH) -> None:
        if min_value <= 0:
            raise ConfigurationError(f"min_value must be > 0, got {min_value}")
        if max_value <= min_value:
            raise ConfigurationError(
                f"max_value ({max_value}) must exceed min_value ({min_value})")
        if growth <= 1.0:
            raise ConfigurationError(f"growth must be > 1, got {growth}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._log_min = math.log(min_value)
        self._log_growth = math.log(growth)
        self.num_buckets = int(
            math.ceil((math.log(max_value) - self._log_min)
                      / self._log_growth)) + 1
        # Precomputed lower bounds; bucket i spans [_bounds[i], _bounds[i+1]).
        self._bounds = [min_value * growth ** i
                        for i in range(self.num_buckets + 1)]

    def index_for(self, value: float) -> int:
        """Return the bucket index a value falls in (clamped to the range)."""
        if value < self.min_value:
            return 0
        if value >= self.max_value:
            return self.num_buckets - 1
        idx = int((math.log(value) - self._log_min) / self._log_growth)
        # Guard against floating point landing on a boundary's wrong side.
        if idx + 1 < len(self._bounds) and value >= self._bounds[idx + 1]:
            idx += 1
        elif value < self._bounds[idx]:
            idx -= 1
        return min(max(idx, 0), self.num_buckets - 1)

    def lower_bound(self, index: int) -> float:
        """Inclusive lower edge of bucket ``index``."""
        return self._bounds[index]

    def upper_bound(self, index: int) -> float:
        """Exclusive upper edge of bucket ``index``."""
        return self._bounds[index + 1]

    def compatible_with(self, other: "BucketLayout") -> bool:
        return (self.min_value == other.min_value
                and self.max_value == other.max_value
                and self.growth == other.growth)

    def to_dict(self) -> dict:
        """JSON-serializable description (histogram snapshot export)."""
        return {"min_value": self.min_value, "max_value": self.max_value,
                "growth": self.growth}

    @classmethod
    def from_dict(cls, data: dict) -> "BucketLayout":
        return cls(min_value=data["min_value"],
                   max_value=data["max_value"], growth=data["growth"])


#: A default layout shared by histograms constructed without an explicit one.
DEFAULT_LAYOUT = BucketLayout()


class HistogramSnapshot:
    """Immutable histogram contents; the read side of the dual buffer.

    ``percentile(p)`` interpolates linearly inside the bucket containing the
    requested rank, so the answer is within one bucket's relative error of
    the true order statistic of the recorded values.

    ``epoch`` is a publisher-assigned identity: the dual-buffer and
    sliding-window publishers increment it every time a *new* view is
    published (swap, bootstrap, preload, window rebuild).  Two snapshots
    from the same publisher with the same epoch are the same object, so
    consumers (:class:`repro.core.bouncer.BouncerPolicy`) can memoize
    derived statistics keyed on the epoch instead of re-walking buckets.
    Snapshots created outside a publisher default to epoch 0.
    """

    __slots__ = ("_layout", "_counts", "count", "_sum", "epoch",
                 "_cumulative", "_cumulative_arr")

    def __init__(self, layout: BucketLayout, counts: Sequence[int],
                 total: int, value_sum: float, epoch: int = 0) -> None:
        self._layout = layout
        self._counts = list(counts)
        self.count = int(total)
        self._sum = float(value_sum)
        self.epoch = int(epoch)
        self._cumulative: Optional[List[int]] = None
        self._cumulative_arr: Optional[object] = None

    def _cum(self) -> List[int]:
        """Cumulative bucket counts, built lazily on first percentile query.

        Snapshots are immutable, so the array is computed at most once and
        every subsequent percentile lookup is a binary search instead of a
        linear bucket walk.
        """
        cum = self._cumulative
        if cum is None:
            cum = list(accumulate(self._counts))
            self._cumulative = cum
        return cum

    def cumulative_array(self) -> object:
        """numpy int64 view of the cumulative counts, cached per snapshot.

        Snapshot immutability makes this effectively epoch-keyed: a
        publisher bumps the epoch only by publishing a *new* snapshot
        object, so holding a snapshot is holding its bucket arrays — no
        separate invalidation token is needed on top of the PR-5 epoch
        scheme.  Raises when numpy is unavailable; callers must branch on
        :func:`repro.core._compat.have_numpy` (or the module's ``_np``).
        """
        if _np is None:
            raise RuntimeError("numpy is not available in this process")
        arr = self._cumulative_arr
        if arr is None:
            arr = _np.asarray(self._cum(), dtype=_np.int64)
            self._cumulative_arr = arr
        return arr

    @property
    def is_empty(self) -> bool:
        """True when no observations back this snapshot."""
        return self.count == 0

    def with_epoch(self, epoch: int) -> "HistogramSnapshot":
        """Copy of this snapshot carrying a different publish epoch.

        Publishers use this to re-stamp an externally supplied snapshot
        (e.g. a preloaded one) so cached derived stats keyed on the old
        epoch cannot be mistaken for the new view's.
        """
        return HistogramSnapshot(self._layout, self._counts, self.count,
                                 self._sum, epoch=epoch)

    def mean(self) -> float:
        """Exact mean of the recorded values (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self._sum / self.count

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile of the recorded values.

        ``p`` is in ``(0, 100]``.  Returns 0.0 for an empty snapshot so that
        cold policies err on the side of accepting (paper Appendix A).
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        return self._rank_value(p / 100.0 * self.count, self._cum())

    def _rank_value(self, target: float, cum: List[int]) -> float:
        """Value at cumulative rank ``target`` via binary search.

        ``bisect_left`` finds the first bucket whose cumulative count
        reaches the target — exactly the bucket the previous linear walk
        stopped at — and the in-bucket interpolation reuses the same
        arithmetic, so results are bit-identical to the scan they replace.
        """
        return self._value_at(bisect_left(cum, target), target)

    def _value_at(self, idx: int, target: float) -> float:
        """Interpolated value for rank ``target`` landing in bucket ``idx``.

        Shared by the bisect and numpy lookup paths so both produce the
        same float arithmetic: ``searchsorted(side='left')`` returns the
        same index as ``bisect_left`` (int64 cumulative counts compare
        exactly against float targets below 2**53), and the in-bucket
        interpolation is this one expression either way.
        """
        cum = self._cum()
        if idx >= len(cum):
            # Rounding pushed the target past the total; return the top edge.
            return self._layout.upper_bound(len(self._counts) - 1)
        bucket_count = self._counts[idx]
        previous = cum[idx] - bucket_count
        lower = self._layout.lower_bound(idx)
        upper = self._layout.upper_bound(idx)
        fraction = (target - previous) / bucket_count
        return lower + (upper - lower) * fraction

    def percentiles(self, ps: Iterable[float]) -> List[float]:
        """Vectorized :meth:`percentile` (one binary search per target).

        With numpy present and enough targets to amortize the dispatch
        overhead (:data:`NUMPY_MIN_TARGETS`), all ranks are located with a
        single ``searchsorted`` over the cached cumulative array; otherwise
        each rank is a ``bisect_left`` on the cached cumulative list.  The
        two paths are bit-identical (``tests/test_numpy_fallback.py``).
        """
        wanted = sorted(set(float(p) for p in ps))
        for p in wanted:
            if not 0 < p <= 100:
                raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return [0.0 for _ in wanted]
        targets = [p / 100.0 * self.count for p in wanted]
        if _np is not None and len(targets) >= NUMPY_MIN_TARGETS:
            indexes = _np.searchsorted(self.cumulative_array(), targets,
                                       side="left")
            return [self._value_at(int(idx), target)
                    for idx, target in zip(indexes, targets)]
        cum = self._cum()
        return [self._value_at(bisect_left(cum, target), target)
                for target in targets]

    def to_dict(self) -> dict:
        """JSON-serializable form (sparse bucket counts).

        Together with :meth:`from_dict`, this supports the paper's
        Appendix A alternative of deploying a system "along with
        pre-populated histograms containing query processing times from
        previous installations".
        """
        return {
            "layout": self._layout.to_dict(),
            "count": self.count,
            "sum": self._sum,
            "epoch": self.epoch,
            "buckets": {str(idx): cnt
                        for idx, cnt in enumerate(self._counts) if cnt},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSnapshot":
        layout = BucketLayout.from_dict(data["layout"])
        counts = [0] * layout.num_buckets
        for idx, cnt in data["buckets"].items():
            index = int(idx)
            if not 0 <= index < layout.num_buckets:
                raise ConfigurationError(
                    f"bucket index {index} outside the layout "
                    f"(0..{layout.num_buckets - 1})")
            counts[index] = int(cnt)
        total = int(data["count"])
        if total != sum(counts):
            raise ConfigurationError(
                f"snapshot count {total} does not match bucket sum "
                f"{sum(counts)}")
        # ``epoch`` rides along when present (the gateway's cross-process
        # snapshot handoff); pre-gateway exports default to 0.
        return cls(layout, counts, total, float(data["sum"]),
                   epoch=int(data.get("epoch", 0)))

    def to_bytes(self) -> bytes:
        """Dense binary form for cross-process publication.

        The gateway's shared-memory snapshot board ships snapshots as the
        existing bucket arrays: a :data:`SNAPSHOT_WIRE_HEADER` (layout
        parameters, epoch, count, sum, bucket-array length) followed by
        the dense little-endian int64 count array.  Bucket *edges* are a
        pure function of the layout parameters, so only the three floats
        that define them travel.
        """
        layout = self._layout
        header = SNAPSHOT_WIRE_HEADER.pack(
            layout.min_value, layout.max_value, layout.growth,
            self.epoch, self.count, self._sum, len(self._counts))
        counts = array("q", self._counts)
        if counts.itemsize != 8:  # pragma: no cover - exotic platforms
            raise RuntimeError("int64 array unavailable on this platform")
        return header + counts.tobytes()

    @classmethod
    def from_bytes(cls, buf: bytes, offset: int = 0,
                   layout: Optional[BucketLayout] = None
                   ) -> "Tuple[HistogramSnapshot, int]":
        """Decode one :meth:`to_bytes` record from ``buf`` at ``offset``.

        Returns the snapshot and the offset just past it (records can be
        packed back to back in one shared-memory slot).  Passing the
        expected ``layout`` skips re-deriving the bucket geometry and
        guarantees the decoded snapshot shares the reader's layout object
        (merge/preload compatibility checks then compare identical
        floats).
        """
        (min_value, max_value, growth, epoch, total, value_sum,
         num_buckets) = SNAPSHOT_WIRE_HEADER.unpack_from(buf, offset)
        if layout is None or (layout.min_value != min_value
                              or layout.max_value != max_value
                              or layout.growth != growth):
            layout = BucketLayout(min_value=min_value, max_value=max_value,
                                  growth=growth)
        if num_buckets != layout.num_buckets:
            raise ConfigurationError(
                f"snapshot carries {num_buckets} buckets but its layout "
                f"defines {layout.num_buckets}")
        start = offset + SNAPSHOT_WIRE_HEADER.size
        end = start + num_buckets * 8
        counts = array("q")
        counts.frombytes(bytes(buf[start:end]))
        return (cls(layout, counts, int(total), float(value_sum),
                    epoch=int(epoch)), end)

    def merged_with(self, other: "HistogramSnapshot",
                    epoch: int = 0) -> "HistogramSnapshot":
        """Return a new snapshot combining both sets of observations."""
        if not self._layout.compatible_with(other._layout):
            raise ConfigurationError("cannot merge snapshots with different "
                                     "bucket layouts")
        counts = [a + b for a, b in zip(self._counts, other._counts)]
        return HistogramSnapshot(self._layout, counts,
                                 self.count + other.count,
                                 self._sum + other._sum, epoch=epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "HistogramSnapshot(empty)"
        return (f"HistogramSnapshot(count={self.count}, "
                f"mean={self.mean():.6f}, p50={self.percentile(50):.6f})")


def empty_snapshot(layout: Optional[BucketLayout] = None) -> HistogramSnapshot:
    """An empty snapshot (used before any interval has been published)."""
    layout = layout or DEFAULT_LAYOUT
    return HistogramSnapshot(layout, [0] * layout.num_buckets, 0, 0.0)


class LatencyHistogram:
    """Mutable recorder of latency observations.

    Not thread-safe by itself; the dual-buffer publisher serializes access
    in multi-threaded runtimes, and the simulator is single-threaded.
    """

    __slots__ = ("_layout", "_counts", "_count", "_sum")

    def __init__(self, layout: Optional[BucketLayout] = None) -> None:
        self._layout = layout or DEFAULT_LAYOUT
        self._counts = [0] * self._layout.num_buckets
        self._count = 0
        self._sum = 0.0

    @classmethod
    def from_values(cls, values: Iterable[float],
                    layout: Optional[BucketLayout] = None
                    ) -> "LatencyHistogram":
        hist = cls(layout)
        for value in values:
            hist.record(value)
        return hist

    @property
    def layout(self) -> BucketLayout:
        return self._layout

    @property
    def count(self) -> int:
        return self._count

    def record(self, value: float) -> None:
        """Record one latency observation (negative values are invalid)."""
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        self._counts[self._layout.index_for(value)] += 1
        self._count += 1
        self._sum += value

    def record_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations in one call.

        Bit-identical to calling :meth:`record` per value: buckets are
        incremented in order and the running sum is accumulated with the
        same left-to-right float additions (an explicit ``+=`` loop — not
        ``sum()``, whose compensated summation would round differently).
        The per-call savings is the method dispatch and attribute loads,
        which the simulator's batched completion flush amortizes over
        hundreds of records.
        """
        counts = self._counts
        index_for = self._layout.index_for
        total = self._sum
        recorded = 0
        for value in values:
            if value < 0:
                self._sum = total
                self._count += recorded
                raise ValueError(f"latency cannot be negative: {value}")
            counts[index_for(value)] += 1
            total += value
            recorded += 1
        self._sum = total
        self._count += recorded

    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def percentile(self, p: float) -> float:
        """Approximate percentile of everything recorded so far."""
        return self.snapshot().percentile(p)

    def snapshot(self, epoch: int = 0) -> HistogramSnapshot:
        """Freeze the current contents into an immutable snapshot.

        ``epoch`` stamps the snapshot's publish epoch; publishers pass their
        monotonically increasing counter, ad-hoc callers leave the default.
        """
        return HistogramSnapshot(self._layout, self._counts, self._count,
                                 self._sum, epoch=epoch)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one."""
        if not self._layout.compatible_with(other._layout):
            raise ConfigurationError("cannot merge histograms with different "
                                     "bucket layouts")
        for idx, cnt in enumerate(other._counts):
            self._counts[idx] += cnt
        self._count += other._count
        self._sum += other._sum

    def reset(self) -> None:
        """Clear all recorded observations (dual-buffer recycle)."""
        for idx in range(len(self._counts)):
            self._counts[idx] = 0
        self._count = 0
        self._sum = 0.0

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyHistogram(count={self._count})"
