"""Re-creations of related-work policies the paper compares against (§6).

The paper's future work includes "evaluating Bouncer against other
policies in the literature"; this subpackage supplies two of them in a
form that runs on the same framework:

* :class:`~repro.core.related.gatekeeper.GatekeeperPolicy` — Elnikety et
  al.'s measurement-based, capacity-centric admission control.
* :class:`~repro.core.related.qcop.QCopPolicy` — Tozer et al.'s
  mix-aware processing-time predictor minimizing client timeouts, with the
  offline regression replaced by an online one.

``benchmarks/bench_related_policies.py`` runs the comparison.
"""

from .gatekeeper import GatekeeperConfig, GatekeeperPolicy
from .qcop import QCopConfig, QCopPolicy

__all__ = [
    "GatekeeperConfig",
    "GatekeeperPolicy",
    "QCopConfig",
    "QCopPolicy",
]
