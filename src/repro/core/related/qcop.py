"""Q-Cop-style admission control (Tozer et al., ICDE 2010; paper §6).

Q-Cop predicts an arriving query's processing time from its *type and the
mix of queries currently in the system*, using a per-type linear model, and
rejects queries predicted to miss their timeout — its objective is to
minimize client timeouts, not to enforce percentile SLOs.

The original trains its regression offline; the paper criticizes exactly
that ("Q-Cop's model ... would need retraining more often than their
authors anticipate").  This re-creation therefore fits the same model
*online* with normalized least-mean-squares updates on every completion:

    pt_hat(Q) = w_type . [1, n_1, n_2, ..., n_k]

where ``n_j`` is the number of type-j queries in the system when ``Q``
starts executing.  The admission rule mirrors Q-Cop's: estimate the queue
wait (Eq. 5 style), add the predicted processing time, and reject if the
total exceeds the timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..sliding_window import SlidingWindowStats
from ..types import AdmissionResult, Query, RejectReason


@dataclass
class QCopConfig:
    """Tunables for :class:`QCopPolicy`.

    Parameters
    ----------
    timeout:
        The client timeout (seconds) the policy tries not to miss — the
        deadline Q-Cop minimizes violations of.
    learning_rate:
        Normalized-LMS step size for the online model (0 < lr <= 1).
    window / step:
        Moving-average window for the queue-wait estimate's ``pt_mavg``.
    """

    timeout: float = 0.050
    learning_rate: float = 0.05
    window: float = 60.0
    step: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got "
                                     f"{self.timeout}")
        if not 0 < self.learning_rate <= 1:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got "
                f"{self.learning_rate}")


class _OnlineLinearModel:
    """Per-type normalized-LMS regression over mix-count features."""

    __slots__ = ("weights", "samples")

    def __init__(self) -> None:
        # Sparse weights: feature name -> weight.  "" is the intercept.
        self.weights: Dict[str, float] = {}
        self.samples = 0

    def predict(self, features: Dict[str, float]) -> float:
        total = self.weights.get("", 0.0)
        for name, value in features.items():
            total += self.weights.get(name, 0.0) * value
        return max(total, 0.0)

    def update(self, features: Dict[str, float], target: float,
               learning_rate: float) -> None:
        error = target - (self.weights.get("", 0.0)
                          + sum(self.weights.get(n, 0.0) * v
                                for n, v in features.items()))
        norm = 1.0 + sum(v * v for v in features.values())
        step = learning_rate * error / norm
        self.weights[""] = self.weights.get("", 0.0) + step
        for name, value in features.items():
            self.weights[name] = self.weights.get(name, 0.0) + step * value
        self.samples += 1


class QCopPolicy(AdmissionPolicy):
    """Reject queries whose predicted response time misses the timeout."""

    name = "qcop"

    def __init__(self, ctx: HostContext, config: QCopConfig = None) -> None:
        super().__init__()
        self._ctx = ctx
        self._config = config or QCopConfig()
        self._models: Dict[str, _OnlineLinearModel] = {}
        self._pt_mavg = SlidingWindowStats(ctx.clock, self._config.window,
                                           self._config.step)
        # In-system counts per type (the "query mix" feature source).
        self._in_system: Dict[str, int] = {}
        # Features captured when each query starts executing, keyed by id.
        self._pending_features: Dict[int, Dict[str, float]] = {}

    @property
    def config(self) -> QCopConfig:
        return self._config

    def _model(self, qtype: str) -> _OnlineLinearModel:
        model = self._models.get(qtype)
        if model is None:
            model = _OnlineLinearModel()
            self._models[qtype] = model
        return model

    def _mix_features(self) -> Dict[str, float]:
        return {qtype: float(count)
                for qtype, count in self._in_system.items() if count > 0}

    def predict_processing(self, qtype: str) -> float:
        """Model prediction; global moving average while still untrained.

        The candidate query itself joins the mix it would run with, so the
        feature vector matches the training-time one (captured at dequeue,
        when the query is in the system).
        """
        model = self._model(qtype)
        if model.samples < 5:
            return self._pt_mavg.mean()
        features = self._mix_features()
        features[qtype] = features.get(qtype, 0.0) + 1.0
        return model.predict(features)

    def estimate_wait_mean(self) -> float:
        """Eq. 5 style: ``l * pt_mavg / P``."""
        length = self._ctx.queue.length()
        if length == 0:
            return 0.0
        return length * self._pt_mavg.mean() / self._ctx.parallelism

    def _decide(self, query: Query) -> AdmissionResult:
        predicted = self.estimate_wait_mean() + self.predict_processing(
            query.qtype)
        if predicted <= self._config.timeout:
            return AdmissionResult.accept()
        return AdmissionResult.reject(RejectReason.EXPECTED_TIMEOUT,
                                      estimates={50: predicted})

    # -- framework hooks ----------------------------------------------------
    def on_enqueued(self, query: Query) -> None:
        self._in_system[query.qtype] = (
            self._in_system.get(query.qtype, 0) + 1)

    def on_dequeued(self, query: Query, wait_time: float) -> None:
        # The mix the query will execute against is the mix *now*.
        self._pending_features[query.query_id] = self._mix_features()

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        remaining = self._in_system.get(query.qtype, 0) - 1
        if remaining > 0:
            self._in_system[query.qtype] = remaining
        else:
            self._in_system.pop(query.qtype, None)
        self._pt_mavg.add(processing_time)
        features = self._pending_features.pop(query.query_id, None)
        if features is not None:
            self._model(query.qtype).update(features, processing_time,
                                            self._config.learning_rate)
