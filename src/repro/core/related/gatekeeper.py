"""Gatekeeper-style admission control (Elnikety et al., WWW 2004; paper §6).

Gatekeeper is the measurement-based, *capacity-centric* policy the paper
positions Bouncer against: it distinguishes request types, estimates each
type's service demand from moving averages, and admits a request only while
the estimated demand of everything currently in the system stays within the
configured capacity.  Its goal is sustained throughput without overload —
not latency SLOs — so under Bouncer's experiments it protects the server
but lets percentile response times drift (that contrast is exactly the
comparison the paper's future work proposes; see
``benchmarks/bench_related_policies.py``).

This is a faithful re-creation of the mechanism at the level the paper
describes it: per-type moving-average service demands, an in-system demand
ledger, and a capacity threshold.  (The original also proxies and schedules
requests; those concerns belong to the serving framework here.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..sliding_window import SlidingWindowStats
from ..types import AdmissionResult, Query, RejectReason


@dataclass
class GatekeeperConfig:
    """Tunables for :class:`GatekeeperPolicy`.

    Parameters
    ----------
    max_outstanding_time:
        Admission ceiling expressed as *seconds of estimated work per
        engine process* allowed in the system at once (queued plus
        executing).  1.0 means "one second of backlog per process" —
        Gatekeeper's off-line-determined capacity, expressed portably.
    window / step:
        Moving-average window for per-type service demands.
    """

    max_outstanding_time: float = 0.5
    window: float = 60.0
    step: float = 1.0

    def __post_init__(self) -> None:
        if self.max_outstanding_time <= 0:
            raise ConfigurationError(
                f"max_outstanding_time must be > 0, got "
                f"{self.max_outstanding_time}")


class GatekeeperPolicy(AdmissionPolicy):
    """Admit while estimated in-system demand stays within capacity."""

    name = "gatekeeper"

    def __init__(self, ctx: HostContext,
                 config: GatekeeperConfig = None) -> None:
        super().__init__()
        self._ctx = ctx
        self._config = config or GatekeeperConfig()
        # Per-type moving-average service demand, plus an all-types
        # fallback for unseen types.
        self._demand: Dict[str, SlidingWindowStats] = {}
        self._demand_all = SlidingWindowStats(ctx.clock,
                                              self._config.window,
                                              self._config.step)
        # In-system counts per type (enqueued or executing).
        self._in_system: Dict[str, int] = {}

    @property
    def config(self) -> GatekeeperConfig:
        return self._config

    def _demand_stats(self, qtype: str) -> SlidingWindowStats:
        stats = self._demand.get(qtype)
        if stats is None:
            stats = SlidingWindowStats(self._ctx.clock,
                                       self._config.window,
                                       self._config.step)
            self._demand[qtype] = stats
        return stats

    def _mean_demand(self, qtype: str) -> float:
        """Estimated service seconds for one query of ``qtype``."""
        per_type = self._demand_stats(qtype)
        if per_type.count() > 0:
            return per_type.mean()
        return self._demand_all.mean()

    def estimated_outstanding(self) -> float:
        """Estimated service seconds currently in the system."""
        total = 0.0
        for qtype, count in self._in_system.items():
            if count > 0:
                total += count * self._mean_demand(qtype)
        return total

    def _decide(self, query: Query) -> AdmissionResult:
        capacity = (self._config.max_outstanding_time
                    * self._ctx.parallelism)
        projected = (self.estimated_outstanding()
                     + self._mean_demand(query.qtype))
        if projected <= capacity:
            return AdmissionResult.accept()
        return AdmissionResult.reject(RejectReason.CAPACITY)

    # -- framework hooks: maintain the in-system ledger --------------------
    def on_enqueued(self, query: Query) -> None:
        self._in_system[query.qtype] = (
            self._in_system.get(query.qtype, 0) + 1)

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        remaining = self._in_system.get(query.qtype, 0) - 1
        if remaining > 0:
            self._in_system[query.qtype] = remaining
        else:
            self._in_system.pop(query.qtype, None)
        self._demand_stats(query.qtype).add(processing_time)
        self._demand_all.add(processing_time)
