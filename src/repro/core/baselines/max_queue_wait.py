"""MaxQWT: the maximum queue wait time policy (paper §5.2.2 and §5.5).

"It admits an incoming query Q only if the estimate for Q's mean queue wait
time is less than or equal to a configurable time limit
(ewt_mean <= T_limit).  The mean queue wait time is estimated as
``ewt_mean = l * pt_mavg / P`` (Eq. 5) where l is the FIFO queue's current
length; pt_mavg is the moving average of query processing times in a
sliding window of duration D and time step delta, with D >> delta; and P is
the number of processes responsible for processing queries."

The paper's §5.5 additionally evaluates an experimental variant where the
wait time limit is assigned *per query type*; pass ``per_type_limits`` to
enable it.  The estimate itself remains type-oblivious (it uses the global
moving-average processing time), exactly as in the paper.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..sliding_window import SlidingWindowStats
from ..types import AdmissionResult, Query, RejectReason

#: Default moving-average window (paper: D = 60s unless stated otherwise).
DEFAULT_WINDOW = 60.0
#: Default moving-average step (paper: delta = 1s).
DEFAULT_STEP = 1.0


class MaxQueueWaitTimePolicy(AdmissionPolicy):
    """Accept while the Eq. 5 mean-wait estimate is within the limit."""

    name = "maxqwt"

    def __init__(self, ctx: HostContext, limit: float = 0.015,
                 per_type_limits: Optional[Mapping[str, float]] = None,
                 window: float = DEFAULT_WINDOW,
                 step: float = DEFAULT_STEP) -> None:
        super().__init__()
        if limit <= 0:
            raise ConfigurationError(
                f"wait time limit must be > 0, got {limit}")
        for qtype, value in (per_type_limits or {}).items():
            if value <= 0:
                raise ConfigurationError(
                    f"per-type limit for {qtype!r} must be > 0, got {value}")
        self._ctx = ctx
        self._limit = float(limit)
        self._per_type_limits = dict(per_type_limits or {})
        self._pt_mavg = SlidingWindowStats(ctx.clock, duration=window,
                                           step=step)

    @property
    def limit(self) -> float:
        """The default (type-oblivious) wait time limit, seconds."""
        return self._limit

    def limit_for(self, qtype: str) -> float:
        """Effective limit for a type (§5.5 variant; default otherwise)."""
        return self._per_type_limits.get(qtype, self._limit)

    def estimate_wait_mean(self) -> float:
        """Eq. 5: ``l * pt_mavg / P``."""
        length = self._ctx.queue.length()
        if length == 0:
            return 0.0
        return length * self._pt_mavg.mean() / self._ctx.parallelism

    def _decide(self, query: Query) -> AdmissionResult:
        estimate = self.estimate_wait_mean()
        if estimate <= self.limit_for(query.qtype):
            return AdmissionResult.accept()
        return AdmissionResult.reject(RejectReason.WAIT_LIMIT)

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        self._pt_mavg.add(processing_time)
