"""MaxQL: the maximum queue length policy (paper §5.2.1).

"It simply accepts an incoming query only if the FIFO queue's length is
less than a configurable length limit (l < L_limit)."
"""

from __future__ import annotations

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..types import AdmissionResult, Query, RejectReason


class MaxQueueLengthPolicy(AdmissionPolicy):
    """Accept while the FIFO queue holds fewer than ``limit`` queries."""

    name = "maxql"

    def __init__(self, ctx: HostContext, limit: int = 400) -> None:
        super().__init__()
        if limit < 1:
            raise ConfigurationError(f"queue limit must be >= 1, got {limit}")
        self._ctx = ctx
        self._limit = int(limit)

    @property
    def limit(self) -> int:
        return self._limit

    def _decide(self, query: Query) -> AdmissionResult:
        if self._ctx.queue.length() < self._limit:
            return AdmissionResult.accept()
        return AdmissionResult.reject(RejectReason.QUEUE_FULL)
