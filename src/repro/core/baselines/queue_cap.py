"""Queue-length safety cap layered under any policy (paper §5.4).

"In LIquid not only MaxQL, but the other policies too can enforce a limit
on the queue's length to safeguard against its unbounded growth.  We set
the maximum queue length (L_limit) to 800 for all the policies."

:class:`QueueLimitWrapper` provides that: it rejects outright when the FIFO
queue has reached the cap and otherwise delegates to the wrapped policy.
"""

from __future__ import annotations

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..types import AdmissionResult, Query, RejectReason


class QueueLimitWrapper(AdmissionPolicy):
    """Reject when the queue is at the cap; otherwise ask the inner policy."""

    def __init__(self, inner: AdmissionPolicy, ctx: HostContext,
                 limit: int = 800) -> None:
        super().__init__()
        if limit < 1:
            raise ConfigurationError(f"queue limit must be >= 1, got {limit}")
        self._inner = inner
        self._ctx = ctx
        self._limit = int(limit)
        self.name = f"{inner.name}+qcap{limit}"

    @property
    def inner(self) -> AdmissionPolicy:
        return self._inner

    @property
    def limit(self) -> int:
        return self._limit

    def _decide(self, query: Query) -> AdmissionResult:
        if self._ctx.queue.length() >= self._limit:
            return AdmissionResult.reject(RejectReason.QUEUE_FULL)
        return self._inner.decide(query)

    def on_enqueued(self, query: Query) -> None:
        self._inner.on_enqueued(query)

    def on_dequeued(self, query: Query, wait_time: float) -> None:
        self._inner.on_dequeued(query, wait_time)

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        self._inner.on_completed(query, wait_time, processing_time)

    def reset_stats(self) -> None:
        super().reset_stats()
        self._inner.reset_stats()
