"""AcceptFraction: the utilization-threshold policy (paper §5.2.3).

The policy periodically computes the fraction of queries the host should
accept::

    f = min(1.0, MaxUtil * |PU| / (qps_mavg * pt_mavg))

where ``MaxUtil * |PU|`` is the *available* processing capacity (fixed at
configuration time) and ``qps_mavg * pt_mavg`` is the *demanded* capacity
from moving averages of the arrival rate and processing times.  It then
accepts each query with probability ``f``.

Per the paper it also estimates every query's mean queue wait with Eq. 5
(``l * pt_mavg / P``) and pre-rejects queries expected to time out in the
queue — the behaviour LIquid's shards rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ...exceptions import ConfigurationError
from ..context import HostContext
from ..policy import AdmissionPolicy
from ..sliding_window import SlidingWindowStats
from ..types import AdmissionResult, Query, RejectReason


@dataclass
class AcceptFractionConfig:
    """Tunables for :class:`AcceptFractionPolicy`.

    Parameters
    ----------
    max_utilization:
        ``MaxUtil`` in (0, 1]: the utilization threshold (95% in the paper's
        simulation study, 80% on LIquid's shards).
    processing_units:
        ``|PU|``; when ``None``, the host context's parallelism is used
        (which is how brokers configure it).
    update_interval:
        How often the accepted fraction ``f`` is recomputed (paper: 1s).
    window / step:
        The moving-average window (paper: D = 60s, delta = 1s).
    reject_expected_timeouts:
        Enable the Eq. 5 pre-rejection of queries that would exceed their
        deadline while queued (on by default, as in LIquid).
    """

    max_utilization: float = 0.95
    processing_units: Optional[int] = None
    update_interval: float = 1.0
    window: float = 60.0
    step: float = 1.0
    reject_expected_timeouts: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.max_utilization <= 1.0:
            raise ConfigurationError(
                f"max_utilization must be in (0, 1], got "
                f"{self.max_utilization}")
        if self.processing_units is not None and self.processing_units < 1:
            raise ConfigurationError("processing_units must be >= 1")
        if self.update_interval <= 0:
            raise ConfigurationError("update_interval must be > 0")


class AcceptFractionPolicy(AdmissionPolicy):
    """Probabilistically shed the traffic exceeding available capacity."""

    name = "accept-fraction"

    def __init__(self, ctx: HostContext,
                 config: Optional[AcceptFractionConfig] = None,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__()
        self._ctx = ctx
        self._config = config or AcceptFractionConfig()
        units = self._config.processing_units or ctx.parallelism
        self._available_capacity = self._config.max_utilization * units
        self._qps = SlidingWindowStats(ctx.clock, self._config.window,
                                       self._config.step)
        self._pt = SlidingWindowStats(ctx.clock, self._config.window,
                                      self._config.step)
        self._rng = rng if rng is not None else random.Random(seed)
        self._fraction = 1.0
        self._next_update = ctx.clock.now() + self._config.update_interval

    @property
    def config(self) -> AcceptFractionConfig:
        return self._config

    @property
    def fraction(self) -> float:
        """The accepted fraction ``f`` currently in force."""
        return self._fraction

    def compute_fraction(self) -> float:
        """Recompute ``f`` from the current moving averages.

        ``dpc = qps_mavg * pt_mavg`` may be zero; per the paper's footnote
        we treat ``min(1.0, inf)`` as 1.0 (accept everything).
        """
        demanded = self._qps.rate() * self._pt.mean()
        if demanded <= 0.0:
            return 1.0
        return min(1.0, self._available_capacity / demanded)

    def estimate_wait_mean(self) -> float:
        """Eq. 5 with ``P = |PU|``, for timeout pre-rejection."""
        length = self._ctx.queue.length()
        if length == 0:
            return 0.0
        units = self._config.processing_units or self._ctx.parallelism
        return length * self._pt.mean() / units

    def _decide(self, query: Query) -> AdmissionResult:
        now = self._ctx.clock.now()
        # Every received query contributes to the demanded-capacity rate.
        self._qps.mark()
        if now >= self._next_update:
            self._fraction = self.compute_fraction()
            behind = int((now - self._next_update)
                         / self._config.update_interval) + 1
            self._next_update += behind * self._config.update_interval

        if (self._config.reject_expected_timeouts
                and query.deadline is not None):
            expected_start = now + self.estimate_wait_mean()
            if expected_start > query.deadline:
                return AdmissionResult.reject(RejectReason.EXPECTED_TIMEOUT)

        if self._fraction >= 1.0 or self._rng.random() < self._fraction:
            return AdmissionResult.accept()
        return AdmissionResult.reject(RejectReason.CAPACITY)

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        self._pt.add(processing_time)
