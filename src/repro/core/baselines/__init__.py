"""In-house baseline admission control policies from the paper's §5.2.

Unlike Bouncer, these are oblivious to query types:

* :class:`~repro.core.baselines.max_queue_length.MaxQueueLengthPolicy`
  (MaxQL, §5.2.1) — accept while the FIFO queue is shorter than a limit.
* :class:`~repro.core.baselines.max_queue_wait.MaxQueueWaitTimePolicy`
  (MaxQWT, §5.2.2) — accept while the estimated mean queue wait is within a
  limit; also supports the §5.5 per-type-limit variant.
* :class:`~repro.core.baselines.accept_fraction.AcceptFractionPolicy`
  (§5.2.3) — probabilistically accept the fraction of traffic the host can
  serve under a utilization threshold.
* :class:`~repro.core.baselines.queue_cap.QueueLimitWrapper` — the safety
  queue-length cap LIquid layers under every policy (§5.4).
"""

from .accept_fraction import AcceptFractionConfig, AcceptFractionPolicy
from .max_queue_length import MaxQueueLengthPolicy
from .max_queue_wait import MaxQueueWaitTimePolicy
from .queue_cap import QueueLimitWrapper

__all__ = [
    "AcceptFractionConfig",
    "AcceptFractionPolicy",
    "MaxQueueLengthPolicy",
    "MaxQueueWaitTimePolicy",
    "QueueLimitWrapper",
]
