"""Starvation-avoidance strategies supplementing Bouncer (paper §4).

Under Bouncer's basic formulation, query types whose processing times sit
closest to the SLO can be rejected systematically — near 100% — while
cheaper types sail through (the paper's Figure 3).  Two strategies prevent
that:

* :class:`AcceptanceAllowancePolicy` (Algorithm 2) guarantees each type a
  small acceptance allowance ``A`` over a sliding window: queries are
  force-accepted while the type's windowed acceptance ratio is below ``A``,
  and rejections are additionally overridden on the spot with probability
  ``A``.

* :class:`HelpingTheUnderservedPolicy` (Algorithm 3) compares each type's
  acceptance ratio ``AR`` with the average across types ``AAR`` and
  overrides rejections with probability ``p = alpha * x / (1 + x)`` where
  ``x = (AAR - AR) / AAR`` — a sigmoid that helps unfavoured types without
  handing them everything.

Both are implemented as *wrappers*: they hold an inner policy (normally
:class:`~repro.core.bouncer.BouncerPolicy`, but any
:class:`~repro.core.policy.AdmissionPolicy` works) and consult it per the
paper's pseudocode.  Framework hooks are forwarded so the inner policy's
histograms keep learning — which is also how the allowance strategy "ensures
that the processing time histograms Bouncer uses for admission decisions get
populated" (§4.1).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from ..exceptions import ConfigurationError
from .clock import Clock
from .policy import AdmissionPolicy
from .sliding_window import SlidingWindowCounts
from .types import AdmissionResult, Query

#: Default sliding-window duration (the paper's example: D = 1s).
DEFAULT_WINDOW = 1.0
#: Default sliding-window step (the paper's example: delta = 10ms).
DEFAULT_STEP = 0.01


class _StarvationWrapper(AdmissionPolicy):
    """Shared plumbing for both strategies: window, RNG, hook forwarding."""

    def __init__(self, inner: AdmissionPolicy, clock: Clock,
                 window: float = DEFAULT_WINDOW, step: float = DEFAULT_STEP,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__()
        self._inner = inner
        self._window = SlidingWindowCounts(clock, duration=window, step=step)
        self._rng = rng if rng is not None else random.Random(seed)
        self._overrides = 0

    @property
    def inner(self) -> AdmissionPolicy:
        """The wrapped policy (normally Bouncer)."""
        return self._inner

    @property
    def window(self) -> SlidingWindowCounts:
        return self._window

    @property
    def override_count(self) -> int:
        """How many inner rejections this strategy flipped to acceptances."""
        return self._overrides

    # Forward the framework hooks so the inner policy keeps learning.
    def on_enqueued(self, query: Query) -> None:
        self._inner.on_enqueued(query)

    def on_dequeued(self, query: Query, wait_time: float) -> None:
        self._inner.on_dequeued(query, wait_time)

    def on_completed(self, query: Query, wait_time: float,
                     processing_time: float) -> None:
        self._inner.on_completed(query, wait_time, processing_time)

    def reset_stats(self) -> None:
        super().reset_stats()
        self._inner.reset_stats()


class AcceptanceAllowancePolicy(_StarvationWrapper):
    """Algorithm 2: a fixed acceptance allowance per query type.

    ``allowance=0.01`` means "we are willing to give free passes to up to 1%
    of the queries of each type over the span of the sliding window".  The
    same allowance applies to every type so the strategy has few knobs
    (paper §4.1).
    """

    name = "bouncer+acceptance-allowance"

    def __init__(self, inner: AdmissionPolicy, clock: Clock,
                 allowance: float = 0.05, window: float = DEFAULT_WINDOW,
                 step: float = DEFAULT_STEP, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= allowance <= 1.0:
            raise ConfigurationError(
                f"allowance must be in [0, 1], got {allowance}")
        super().__init__(inner, clock, window, step, seed, rng)
        self._allowance = float(allowance)

    @property
    def allowance(self) -> float:
        return self._allowance

    def _decide(self, query: Query) -> AdmissionResult:
        qtype = query.qtype
        accepted_count = self._window.accepted_count(qtype)
        received_count = self._window.received_count(qtype)

        result: Optional[AdmissionResult] = None
        if received_count == 0:
            # First query of this type in the window: always let it in, so
            # types never disappear entirely and histograms stay populated.
            result = AdmissionResult.accept(overridden=True)
        elif accepted_count / received_count < self._allowance:
            # Historical part: the type is under its allowance.
            result = AdmissionResult.accept(overridden=True)

        if result is None:
            result = self._inner.decide(query)

        if not result.accepted and self._rng.random() < self._allowance:
            # "On the spot" part: override the rejection with probability A.
            result = AdmissionResult.accept(estimates=result.estimates,
                                            overridden=True)

        if result.overridden:
            self._overrides += 1
        self._window.record(qtype, result.accepted)
        return result


class HelpingTheUnderservedPolicy(_StarvationWrapper):
    """Algorithm 3: probabilistically help types treated unfavourably.

    After an inner rejection, if the type's acceptance ratio ``AR`` is below
    the average acceptance ratio ``AAR`` across the recognized types, the
    rejection is overridden with probability
    ``p = alpha * x / (1 + x)``, ``x = (AAR - AR) / AAR``.
    With ``alpha = 1`` the override probability approaches 0.5 for the most
    starved types (``AR -> 0`` gives ``x -> 1``).

    Parameters
    ----------
    qtypes:
        The set ``QT`` over which ``AAR`` averages.  When omitted, the types
        observed in the current window are used; the paper's formulation
        averages over the policy's configured types, so experiments pass the
        configured list explicitly.
    """

    name = "bouncer+helping-the-underserved"

    def __init__(self, inner: AdmissionPolicy, clock: Clock,
                 alpha: float = 1.0, window: float = DEFAULT_WINDOW,
                 step: float = DEFAULT_STEP,
                 qtypes: Optional[Iterable[str]] = None,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}")
        super().__init__(inner, clock, window, step, seed, rng)
        self._alpha = float(alpha)
        self._qtypes: Optional[Sequence[str]] = (
            tuple(qtypes) if qtypes is not None else None)

    @property
    def alpha(self) -> float:
        return self._alpha

    def override_probability(self, ar: float, aar: float) -> float:
        """The sigmoid-scaled probability of overriding a rejection."""
        if aar <= 0.0 or ar >= aar:
            return 0.0
        x = (aar - ar) / aar
        return self._alpha * x / (1.0 + x)

    def _decide(self, query: Query) -> AdmissionResult:
        qtype = query.qtype
        result = self._inner.decide(query)
        if not result.accepted:
            ar = self._window.acceptance_ratio(qtype)
            qtypes = (self._qtypes if self._qtypes is not None
                      else self._window.observed_keys() or [qtype])
            aar = self._window.average_acceptance_ratio(qtypes)
            probability = self.override_probability(ar, aar)
            if probability > 0.0 and self._rng.random() < probability:
                result = AdmissionResult.accept(estimates=result.estimates,
                                                overridden=True)
                self._overrides += 1
        self._window.record(qtype, result.accepted)
        return result
