"""Core value types shared by policies, simulators, and runtime servers.

The paper's framework (its Figure 1) revolves around *queries* flowing
through an admission decision, a FIFO queue, and a pool of query engine
processes.  This module defines the small, immutable vocabulary those
components exchange: :class:`Query`, :class:`Decision`,
:class:`RejectReason`, and :class:`AdmissionResult`.

All times in this library are expressed in **seconds** as floats, on
whatever clock the enclosing component uses (simulated or monotonic
wall-clock).  Latency SLO targets, histogram values, and estimates all share
this unit so they can be compared directly.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Mapping, Optional

#: Name of the catch-all query type.  Queries whose type string is not
#: registered with a policy are treated as this type, and the policy's
#: "general" histogram and default SLO apply to them (paper §3, Appendix A).
DEFAULT_QUERY_TYPE = "default"

_query_ids = itertools.count(1)


def next_query_id() -> int:
    """Return a process-wide unique, monotonically increasing query id."""
    return next(_query_ids)


class Query:
    """A single client query travelling through the admission framework.

    One ``Query`` is allocated per arrival on the hot path, so the class
    uses ``__slots__`` (no per-instance ``__dict__``) to keep allocation
    and attribute access cheap.

    Parameters
    ----------
    qtype:
        Short string naming the query's type (paper §3: e.g. part of a REST
        path or a datalog rule name).  Policies look SLOs and histograms up
        by this string; unrecognized strings fall back to
        :data:`DEFAULT_QUERY_TYPE`.
    arrival_time:
        Instant the query arrived at the host, on the host's clock.
    deadline:
        Optional absolute expiration instant.  Policies that pre-reject
        queries expected to time out (AcceptFraction in LIquid) consult it;
        ``None`` means "generous expiration", as in the paper's §5.4 runs.
    payload:
        Opaque application payload (e.g. a :mod:`repro.liquid` query object).
    """

    __slots__ = ("qtype", "arrival_time", "deadline", "payload", "query_id",
                 "enqueued_at", "dequeued_at", "completed_at",
                 "service_time", "span_ctx")

    def __init__(self, qtype: str, arrival_time: float = 0.0,
                 deadline: Optional[float] = None, payload: Any = None,
                 query_id: Optional[int] = None) -> None:
        self.qtype = qtype
        self.arrival_time = arrival_time
        self.deadline = deadline
        self.payload = payload
        self.query_id = next_query_id() if query_id is None else query_id
        # Timestamps stamped by the framework as the query progresses.  They
        # are mutable bookkeeping, not part of the query's identity.
        self.enqueued_at: Optional[float] = None
        self.dequeued_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        # Hosts may stash the sampled service demand here at admission so it
        # is not re-derived at dispatch (see repro.sim.server).
        self.service_time: Optional[float] = None
        # Open lifecycle-span handles for a span-sampled query
        # (a repro.telemetry.spans.SpanContext); None when tracing is off
        # or the query is unsampled.  Observational only.
        self.span_ctx: Optional[Any] = None

    def __repr__(self) -> str:
        return (f"Query(qtype={self.qtype!r}, "
                f"arrival_time={self.arrival_time!r}, "
                f"query_id={self.query_id!r})")

    @property
    def wait_time(self) -> Optional[float]:
        """Time spent in the FIFO queue (``wt(Q)`` in the paper), if known."""
        if self.enqueued_at is None or self.dequeued_at is None:
            return None
        return self.dequeued_at - self.enqueued_at

    @property
    def processing_time(self) -> Optional[float]:
        """Time from dequeue to completion (``pt(Q)``), if known."""
        if self.dequeued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.dequeued_at

    @property
    def response_time(self) -> Optional[float]:
        """Total response time ``rt(Q) = wt(Q) + pt(Q)`` (paper Eq. 1).

        The paper's extra host-handling term ``xi`` is assumed zero, as the
        authors do.
        """
        if self.enqueued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


class QueryPool:
    """Free-list recycler for :class:`Query` objects.

    Million-query simulations allocate (and garbage-collect) one ``Query``
    per arrival; the pool caps that churn by recycling objects whose
    lifecycle has ended.  The contract mirrors the simulator's event
    free-list:

    * :meth:`acquire` hands out a fully re-initialised query — every slot
      is reset and a **fresh** ``query_id`` is drawn, so downstream maps
      keyed by id (tracers, calibration joins) can never collide with a
      previous tenancy;
    * :meth:`release` is the *only* way to return an object.  Callers must
      not stash released queries or re-enqueue them by hand (the
      ``pool-discipline`` lint rule in :mod:`repro.analysis` enforces
      this), because the next ``acquire`` will re-initialise the object
      under them.

    Only enable pooling when nothing retains queries past their terminal
    point (rejection, expiration, completion).  The stock simulator
    metrics, policies, and fault injector keep only derived scalars;
    telemetry tracers and user decision hooks may keep references, so the
    driver disables pooling when those are attached.
    """

    __slots__ = ("_free", "_capacity", "allocated", "recycled")

    def __init__(self, capacity: int = 4096) -> None:
        self._free: list = []
        self._capacity = capacity
        #: Queries constructed because the free list was empty.
        self.allocated = 0
        #: Acquires served from the free list.
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, qtype: str, arrival_time: float = 0.0,
                deadline: Optional[float] = None,
                payload: Any = None) -> Query:
        """Return a reset query (recycled when possible, else fresh)."""
        free = self._free
        if free:
            query: Query = free.pop()
            self.recycled += 1
            query.qtype = qtype
            query.arrival_time = arrival_time
            query.deadline = deadline
            query.payload = payload
            query.query_id = next_query_id()
            query.enqueued_at = None
            query.dequeued_at = None
            query.completed_at = None
            query.service_time = None
            query.span_ctx = None
            return query
        self.allocated += 1
        return Query(qtype, arrival_time, deadline, payload)

    def release(self, query: Query) -> None:
        """Return ``query`` to the free list (drop it when full)."""
        if len(self._free) < self._capacity:
            self._free.append(query)


class Decision(enum.Enum):
    """Outcome of an admission decision."""

    ACCEPT = "accept"
    REJECT = "reject"

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self is Decision.ACCEPT


class RejectReason(enum.Enum):
    """Why a policy rejected a query.

    The paper's policies reject for different causes; recording the cause
    lets operators (and our experiment reports) attribute rejections.
    """

    #: A percentile response-time estimate exceeded its SLO target
    #: (Bouncer, Algorithm 1).
    SLO_ESTIMATE = "slo_estimate"
    #: The FIFO queue reached its configured maximum length (MaxQL, or the
    #: safety cap available to every policy in LIquid).
    QUEUE_FULL = "queue_full"
    #: The estimated mean queue wait time exceeded the limit (MaxQWT).
    WAIT_LIMIT = "wait_limit"
    #: Probabilistic shedding to stay under the utilization threshold
    #: (AcceptFraction).
    CAPACITY = "capacity"
    #: The query was predicted to miss its expiration deadline in the queue
    #: (AcceptFraction's timeout pre-rejection).
    EXPECTED_TIMEOUT = "expected_timeout"
    #: Rejected by a downstream component (e.g. a shard) rather than by the
    #: local policy.
    DOWNSTREAM = "downstream"
    #: Unconditional rejection (testing / drain mode).
    ADMINISTRATIVE = "administrative"
    #: The query was refused by an injected fault (blackout, crash, or
    #: queue drop from :mod:`repro.faults`), not by the admission policy.
    FAULT_INJECTED = "fault_injected"


class AdmissionResult:
    """A decision plus the evidence that produced it.

    ``estimates`` carries the percentile response-time estimates a policy
    computed (e.g. ``{50: 0.021, 90: 0.047}`` for Bouncer), which the
    starvation-avoidance wrappers, tests, and experiment reports inspect.
    ``overridden`` is set by starvation-avoidance strategies when they flip
    an inner rejection into an acceptance (paper §4).

    One result is allocated per decision, so the class uses ``__slots__``.
    Instances are treated as immutable by convention (nothing in the
    framework mutates one after construction).
    """

    __slots__ = ("decision", "reason", "estimates", "overridden")

    def __init__(self, decision: Decision,
                 reason: Optional[RejectReason] = None,
                 estimates: Optional[Mapping[int, float]] = None,
                 overridden: bool = False) -> None:
        self.decision = decision
        self.reason = reason
        self.estimates: Mapping[int, float] = (
            estimates if estimates is not None else {})
        self.overridden = overridden

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdmissionResult):
            return NotImplemented
        return (self.decision is other.decision
                and self.reason is other.reason
                and dict(self.estimates) == dict(other.estimates)
                and self.overridden == other.overridden)

    def __repr__(self) -> str:
        return (f"AdmissionResult(decision={self.decision!r}, "
                f"reason={self.reason!r}, estimates={self.estimates!r}, "
                f"overridden={self.overridden!r})")

    @property
    def accepted(self) -> bool:
        """True when the decision admits the query."""
        return self.decision is Decision.ACCEPT

    @staticmethod
    def accept(estimates: Optional[Mapping[int, float]] = None,
               overridden: bool = False) -> "AdmissionResult":
        """Build an acceptance result."""
        return AdmissionResult(Decision.ACCEPT, None, estimates or {},
                               overridden)

    @staticmethod
    def reject(reason: RejectReason,
               estimates: Optional[Mapping[int, float]] = None
               ) -> "AdmissionResult":
        """Build a rejection result with its cause."""
        return AdmissionResult(Decision.REJECT, reason, estimates or {})

    def __str__(self) -> str:
        if self.accepted:
            suffix = " (override)" if self.overridden else ""
            return f"ACCEPT{suffix}"
        reason = self.reason.value if self.reason else "unspecified"
        return f"REJECT[{reason}]"
