"""Dual-buffer histogram publishing (paper §3, footnote 4, and Appendix A).

Bouncer "periodically updates the histograms at run time using a dual-buffer
technique: while one histogram is only read, a second histogram is being
populated.  At the end of a time interval the new and old histograms are
swapped atomically, and the old histogram is reset before being populated
again."

:class:`DualBufferHistogram` implements exactly that, plus the Appendix A
refinement for traffic lulls: when the interval that just ended collected
fewer than ``min_samples`` observations, the previously published snapshot
is *retained* ("we prefer stale data to no data") instead of being replaced
by a near-empty one.

:class:`SlidingWindowHistogram` implements the alternative the paper lists
as future work — updating histograms over a sliding window of overlapping
sub-intervals instead of non-overlapping windows — so the two designs can be
compared (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import threading
from typing import Optional

from ..exceptions import ConfigurationError
from .clock import Clock
from .histogram import (BucketLayout, HistogramSnapshot, LatencyHistogram,
                        empty_snapshot)

#: Default publishing interval, mirroring the 1-second cadence LIquid uses.
DEFAULT_INTERVAL = 1.0
#: Default minimum sample count for a new interval to replace the published
#: snapshot (Appendix A stale-retention threshold).
DEFAULT_MIN_SAMPLES = 10


class DualBufferHistogram:
    """A write histogram and an atomically swapped read snapshot.

    The swap is *lazy*: rather than requiring a background timer thread, the
    buffer checks the clock on every :meth:`record` and :meth:`snapshot`
    call and performs any due swap first.  In the discrete-event simulator
    this makes swaps happen at exact simulated instants; in the threaded
    runtime it bounds staleness by the inter-arrival gap, which under the
    loads where admission control matters is microseconds.

    Thread safety: a single lock guards the swap and the write histogram.
    Reads of the published snapshot are safe without the lock because
    snapshots are immutable; the lock is only taken to check for a due swap.

    Every *published* view (swap, bootstrap publish, preload — but not a
    retained stale snapshot, whose object is unchanged) increments a
    monotonically increasing epoch stamped onto the snapshot, so consumers
    can cache derived statistics per epoch (see
    :class:`repro.core.histogram.HistogramSnapshot`).
    """

    #: Records only become visible at the next publish, never immediately;
    #: the Bouncer fast path uses this to decide whether a completion must
    #: dirty its cached Eq. 2 state.
    records_visible_immediately = False

    def __init__(self, clock: Clock, interval: float = DEFAULT_INTERVAL,
                 min_samples: int = DEFAULT_MIN_SAMPLES,
                 bootstrap_samples: int = 0,
                 layout: Optional[BucketLayout] = None) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        if min_samples < 0:
            raise ConfigurationError(
                f"min_samples must be >= 0, got {min_samples}")
        if bootstrap_samples < 0:
            raise ConfigurationError(
                f"bootstrap_samples must be >= 0, got {bootstrap_samples}")
        self._clock = clock
        self._interval = float(interval)
        self._min_samples = int(min_samples)
        self._bootstrap_samples = int(bootstrap_samples)
        self._layout = layout
        self._active = LatencyHistogram(layout)
        self._published: HistogramSnapshot = empty_snapshot(
            self._active.layout)
        self._next_swap = clock.now() + interval
        self._lock = threading.Lock()
        self._swaps = 0
        self._retained = 0
        self._epoch = 0

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def published_epoch(self) -> int:
        """Epoch of the most recently published view (0 = nothing yet)."""
        return self._epoch

    @property
    def bootstrap_pending(self) -> bool:
        """True when the next touch would trigger a bootstrap publish.

        Advisory and read without the lock (each attribute read is atomic;
        a stale answer only delays a cache refresh by one call) — the
        Bouncer fast path polls this after recording completions to know it
        must keep touching the buffer until the bootstrap fires.
        """
        return bool(self._bootstrap_samples
                    and self._published.is_empty
                    and self._active.count >= self._bootstrap_samples)

    def next_publish_due(self) -> float:
        """Instant of the next time-driven publish boundary.

        Bootstrap publishes are sample-driven, not time-driven; they are
        advertised via :attr:`bootstrap_pending` instead.
        """
        with self._lock:
            return self._next_swap

    @property
    def swap_count(self) -> int:
        """Number of interval boundaries processed (observability)."""
        return self._swaps

    @property
    def retained_count(self) -> int:
        """How many swaps kept the stale snapshot due to scarce samples."""
        return self._retained

    def record(self, value: float) -> None:
        """Record a latency into the write buffer (swapping first if due)."""
        with self._lock:
            self._maybe_swap_locked()
            self._active.record(value)

    def snapshot(self) -> HistogramSnapshot:
        """Return the currently published (read-side) snapshot."""
        with self._lock:
            self._maybe_swap_locked()
            return self._published

    def preload(self, snapshot: HistogramSnapshot,
                adopt_epoch: bool = False) -> None:
        """Install a pre-populated snapshot as the published view.

        Appendix A's alternative cold-start remedy: deploy with histograms
        captured from a previous installation.  The preloaded snapshot
        serves reads until the first regular swap replaces it with live
        data (or retains it over a sparse interval).

        ``adopt_epoch`` performs the cross-process epoch handoff used by
        the gateway's shared-memory snapshot protocol: the publisher's
        epoch (already stamped on ``snapshot``) is carried into this
        buffer, so every consumer applying the same publication sequence
        observes identical epochs — the epoch *is* the invalidation token.
        The local counter still only moves forward (``max`` below), so a
        subsequent local publish cannot reuse a consumed epoch.
        """
        with self._lock:
            if not self._active.layout.compatible_with(snapshot._layout):
                raise ConfigurationError(
                    "preloaded snapshot has an incompatible bucket layout")
            if adopt_epoch:
                self._epoch = max(self._epoch + 1, snapshot.epoch)
            else:
                self._epoch += 1
            self._published = (snapshot if snapshot.epoch == self._epoch
                               else snapshot.with_epoch(self._epoch))
            self._next_swap = self._clock.now() + self._interval

    def force_swap(self) -> HistogramSnapshot:
        """Publish the write buffer immediately (tests and warm-up)."""
        with self._lock:
            self._publish_locked()
            self._next_swap = self._clock.now() + self._interval
            return self._published

    def _maybe_swap_locked(self) -> None:
        now = self._clock.now()
        if now < self._next_swap:
            # Cold-start bootstrap: publish the very first snapshot as soon
            # as enough samples exist, rather than blindly admitting (or
            # rejecting) for a whole interval with a blank read side.  This
            # shortens the cold-start window Appendix A discusses from one
            # interval to ``bootstrap_samples`` arrivals.
            if (self._bootstrap_samples
                    and self._published.is_empty
                    and self._active.count >= self._bootstrap_samples):
                self._publish_locked()
                self._next_swap = now + self._interval
            return
        self._publish_locked()
        # Skip whole intervals that elapsed with no activity so the next
        # boundary is in the future relative to ``now``.
        intervals_behind = int((now - self._next_swap) / self._interval) + 1
        self._next_swap += intervals_behind * self._interval

    def _publish_locked(self) -> None:
        self._swaps += 1
        if (self._active.count >= self._min_samples
                or self._published.is_empty):
            self._epoch += 1
            self._published = self._active.snapshot(epoch=self._epoch)
        else:
            # Appendix A: retain the stale snapshot over a starved interval.
            # The published object (and its epoch) is unchanged, so caches
            # keyed on it stay valid.
            self._retained += 1
        self._active.reset()


class SlidingWindowHistogram:
    """Histogram over the last ``window`` seconds, in ``step``-sized slices.

    The published view merges the most recent ``window / step`` completed
    slices, so observations age out gradually instead of all at once at the
    interval boundary.  This is the paper's future-work alternative to the
    dual buffer; it trades memory (one histogram per slice) and merge cost
    for smoother estimates.

    The merged view only changes when a slice rotates or a record lands, so
    :meth:`snapshot` caches the merged result and re-publishes the same
    object (same epoch) until either happens.  The set of *live* slices is
    stable between rotations: the oldest live slice only ages past the
    horizon exactly when the next rotation is due, so a cached view can
    never hide a slice expiry.
    """

    #: Records land in the current slice and are visible on the very next
    #: merge — the Bouncer fast path must treat any completion as
    #: invalidating cached Eq. 2 state for this publisher.
    records_visible_immediately = True

    def __init__(self, clock: Clock, window: float = 10.0, step: float = 1.0,
                 layout: Optional[BucketLayout] = None) -> None:
        if step <= 0 or window <= 0:
            raise ConfigurationError("window and step must be > 0")
        if window < step:
            raise ConfigurationError(
                f"window ({window}) must be >= step ({step})")
        self._clock = clock
        self._step = float(step)
        self._num_slices = max(1, int(round(window / step)))
        self._layout = layout
        self._slices = [LatencyHistogram(layout)
                        for _ in range(self._num_slices)]
        self._slice_starts = [float("-inf")] * self._num_slices
        self._current = 0
        self._slice_starts[0] = clock.now()
        self._lock = threading.Lock()
        self._epoch = 0
        self._cached: Optional[HistogramSnapshot] = None

    @property
    def published_epoch(self) -> int:
        """Epoch of the most recently merged view (0 = never merged)."""
        return self._epoch

    @property
    def bootstrap_pending(self) -> bool:
        """Sliding windows have no bootstrap phase; always False."""
        return False

    def next_publish_due(self) -> float:
        """Instant of the next slice rotation (next time-driven change)."""
        with self._lock:
            return self._slice_starts[self._current] + self._step

    def record(self, value: float) -> None:
        with self._lock:
            self._advance_locked()
            self._slices[self._current].record(value)
            self._cached = None

    def snapshot(self) -> HistogramSnapshot:
        """Merge all live slices into one immutable snapshot.

        The merge is cached: until a rotation or a new record invalidates
        it, repeat calls return the identical snapshot object (same epoch).
        """
        with self._lock:
            if self._advance_locked():
                self._cached = None
            cached = self._cached
            if cached is not None:
                return cached
            now = self._clock.now()
            horizon = now - self._num_slices * self._step
            merged = LatencyHistogram(self._slices[0].layout)
            for idx, hist in enumerate(self._slices):
                if self._slice_starts[idx] >= horizon:
                    merged.merge(hist)
            self._epoch += 1
            snap = merged.snapshot(epoch=self._epoch)
            self._cached = snap
            return snap

    def _advance_locked(self) -> bool:
        """Rotate slices up to ``now``; True when any rotation happened."""
        now = self._clock.now()
        current_start = self._slice_starts[self._current]
        steps_behind = int((now - current_start) / self._step)
        if steps_behind <= 0:
            return False
        # Rotate forward, clearing the slices we move into.  Cap the loop at
        # one full rotation: anything older is cleared anyway.
        for offset in range(1, min(steps_behind, self._num_slices) + 1):
            idx = (self._current + offset) % self._num_slices
            self._slices[idx].reset()
            self._slice_starts[idx] = current_start + offset * self._step
        self._current = (self._current + steps_behind) % self._num_slices
        self._slice_starts[self._current] = (current_start
                                             + steps_behind * self._step)
        return True
