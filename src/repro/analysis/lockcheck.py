"""Dynamic lock-order checking: instrumented locks + a global lock graph.

Static analysis can prove a lock is *held correctly* (see the
``lock-discipline`` rule) but not that the ~10 ``threading.Lock`` instances
across ``core``, ``telemetry``, ``runtime`` and ``faults`` are acquired in
a consistent global order.  This module checks that at runtime:

* :class:`CheckedLock` / :class:`CheckedRLock` wrap the real primitives and
  report every acquisition to a :class:`LockCheckRegistry`;
* the registry maintains a **lock graph**: holding ``A`` while acquiring
  ``B`` adds the edge ``A -> B``, stamped with the acquiring thread's
  stack;
* a new edge that closes a cycle (``B`` is already reachable back to
  ``A``) is a potential deadlock — an ABBA interleaving away from hanging
  the process — and is recorded as a :class:`LockOrderViolation` carrying
  the stacks of *both* conflicting acquisitions.

:class:`CheckedAsyncLock` / :class:`CheckedAsyncCondition` put
``asyncio.Lock``/``Condition`` into the *same* graph: inside a running
task the held stack is tracked per-task (coroutines multiplex one loop
thread, so thread-locals would invent edges between independent tasks),
and mixed async/thread cycles — the gateway's deadlock shape — are
reported like any other.

:func:`install` monkey-patches ``threading.Lock``/``threading.RLock``
(and ``asyncio.Lock``/``Condition``) so that locks constructed *from
repro code* are instrumented while stdlib machinery (futures, HTTP
servers) keeps real primitives.  The pytest plugin
(:mod:`repro.analysis.pytest_plugin`) installs it for the whole suite when
``REPRO_LOCKCHECK=1``; ``repro lint --dynamic`` installs it around a short
sim + runtime workload.

Edges are recorded *before* the blocking acquire, so an actual deadlock
interleaving still produces a report instead of hanging silently first.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

# The real primitives, captured before install() can patch them.  Every
# internal lock below uses these so the checker never instruments itself.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_ASYNC_LOCK = asyncio.Lock
_REAL_ASYNC_CONDITION = asyncio.Condition


def _current_task() -> Optional["asyncio.Task[Any]"]:
    """The running asyncio task, or ``None`` outside an event loop."""
    try:
        return asyncio.current_task()
    except RuntimeError:  # no running loop on this thread
        return None

#: Stack frames kept per recorded acquisition site.
_STACK_LIMIT = 16


def _creation_site() -> str:
    """``file:line`` of the first caller frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _capture_stack() -> str:
    """The acquiring thread's stack, trimmed of lockcheck internals."""
    frames = traceback.extract_stack(limit=_STACK_LIMIT + 4)
    kept = [f for f in frames if f.filename != __file__]
    return "".join(traceback.format_list(kept[-_STACK_LIMIT:]))


@dataclass(frozen=True)
class _Edge:
    """One observed hold-A-acquire-B ordering."""

    source: int
    target: int
    thread: str
    stack: str


@dataclass(frozen=True)
class LockOrderViolation:
    """A lock-graph cycle: two (or more) inconsistent acquisition orders."""

    #: Human-readable cycle, e.g. ``a.py:10 -> b.py:20 -> a.py:10``.
    cycle: Tuple[str, ...]
    #: The acquisition that closed the cycle.
    closing_edge: _Edge
    #: The previously recorded edges forming the return path.
    path_edges: Tuple[_Edge, ...]
    #: Creation sites by lock id (for rendering).
    names: Dict[int, str] = field(compare=False, default_factory=dict)

    def _describe(self, edge: _Edge) -> str:
        src = self.names.get(edge.source, f"lock#{edge.source}")
        dst = self.names.get(edge.target, f"lock#{edge.target}")
        return (f"thread {edge.thread!r} held {src} while acquiring {dst}"
                f"\n{edge.stack}")

    def format(self) -> str:
        """Multi-line report with the stacks of every conflicting edge."""
        lines = ["potential deadlock: lock-order cycle "
                 + " -> ".join(self.cycle)]
        lines.append("closing acquisition:")
        lines.append(self._describe(self.closing_edge))
        for edge in self.path_edges:
            lines.append("conflicts with earlier acquisition:")
            lines.append(self._describe(edge))
        return "\n".join(lines)


class LockCheckRegistry:
    """Process-wide lock graph shared by every instrumented lock.

    Thread-safe; all graph state is guarded by a *real* (uninstrumented)
    mutex.  ``raise_on_violation`` makes the acquiring thread raise
    immediately — useful in targeted tests; the suite-wide fixture instead
    collects violations and fails at session teardown so one report shows
    every cycle.
    """

    def __init__(self, raise_on_violation: bool = False) -> None:
        self._mutex = _REAL_LOCK()
        self._graph: Dict[int, Dict[int, _Edge]] = {}
        self._names: Dict[int, str] = {}
        self._held = threading.local()
        # Coroutines multiplex on one loop thread, so a thread-local held
        # stack would invent hold-while-acquire edges between *independent*
        # tasks.  Inside a task the held stack is per-task instead; the
        # weak keying lets finished tasks drop their bookkeeping.
        self._task_held: "weakref.WeakKeyDictionary[Any, List[int]]" = (
            weakref.WeakKeyDictionary())
        self.raise_on_violation = raise_on_violation
        self.violations: List[LockOrderViolation] = []

    # -- lock bookkeeping ------------------------------------------------
    def register(self, lock_id: int, name: str) -> None:
        with self._mutex:
            self._names[lock_id] = name

    def _held_stack(self) -> List[int]:
        task = _current_task()
        if task is not None:
            with self._mutex:
                task_stack = self._task_held.get(task)
                if task_stack is None:
                    task_stack = []
                    self._task_held[task] = task_stack
            return task_stack
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquiring(self, lock_id: int) -> None:
        """Record ordering edges for an acquisition about to block."""
        held = self._held_stack()
        if not held or lock_id in held:
            return  # nothing held, or a reentrant re-acquisition
        stack = None
        task = _current_task()
        thread = (task.get_name() if task is not None
                  else threading.current_thread().name)
        for source in dict.fromkeys(held):  # distinct, oldest first
            with self._mutex:
                if lock_id in self._graph.get(source, {}):
                    continue  # edge already known
            if stack is None:
                stack = _capture_stack()
            self._add_edge(_Edge(source=source, target=lock_id,
                                 thread=thread, stack=stack))

    def note_acquired(self, lock_id: int) -> None:
        self._held_stack().append(lock_id)

    def note_released(self, lock_id: int) -> None:
        held = self._held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == lock_id:
                del held[index]
                return

    # -- graph -----------------------------------------------------------
    def _add_edge(self, edge: _Edge) -> None:
        violation: Optional[LockOrderViolation] = None
        with self._mutex:
            targets = self._graph.setdefault(edge.source, {})
            if edge.target in targets:
                return
            targets[edge.target] = edge
            path = self._find_path(edge.target, edge.source)
            if path is not None:
                names = dict(self._names)
                cycle_ids = [edge.source, edge.target]
                cycle_ids += [e.target for e in path]
                cycle = tuple(names.get(lock_id, f"lock#{lock_id}")
                              for lock_id in cycle_ids)
                violation = LockOrderViolation(
                    cycle=cycle, closing_edge=edge,
                    path_edges=tuple(path), names=names)
                self.violations.append(violation)
        if violation is not None and self.raise_on_violation:
            raise AssertionError(violation.format())

    def _find_path(self, start: int, goal: int
                   ) -> Optional[List[_Edge]]:
        """Edge path ``start -> ... -> goal`` in the graph, if any (DFS).

        Caller holds ``self._mutex``.
        """
        stack: List[Tuple[int, List[_Edge]]] = [(start, [])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for target, edge in self._graph.get(node, {}).items():
                if target == goal:
                    return path + [edge]
                if target not in seen:
                    seen.add(target)
                    stack.append((target, path + [edge]))
        return None

    # -- reporting -------------------------------------------------------
    def edge_count(self) -> int:
        with self._mutex:
            return sum(len(targets) for targets in self._graph.values())

    def check(self) -> None:
        """Raise :class:`AssertionError` listing every recorded cycle."""
        if self.violations:
            reports = "\n\n".join(v.format() for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} lock-order violation(s) detected "
                f"by repro.analysis.lockcheck:\n{reports}")

    def reset(self) -> None:
        with self._mutex:
            self._graph.clear()
            self.violations.clear()
            self._task_held = weakref.WeakKeyDictionary()


class CheckedLock:
    """Drop-in ``threading.Lock`` reporting acquisitions to a registry."""

    _factory = staticmethod(_REAL_LOCK)

    def __init__(self, registry: Optional[LockCheckRegistry] = None,
                 name: Optional[str] = None) -> None:
        self._inner = type(self)._factory()
        self._registry = (registry if registry is not None
                          else current_registry())
        self._name = name or _creation_site()
        if self._registry is not None:
            self._registry.register(id(self), self._name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        registry = self._registry
        if registry is not None:
            registry.note_acquiring(id(self))
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired and registry is not None:
            registry.note_acquired(id(self))
        return acquired

    def release(self) -> None:
        if self._registry is not None:
            self._registry.note_released(id(self))
        self._inner.release()  # type: ignore[attr-defined]

    def locked(self) -> bool:
        return bool(self._inner.locked())  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name}>"


class CheckedRLock(CheckedLock):
    """Drop-in ``threading.RLock``; reentrant re-acquisitions add no edges
    (the registry skips locks the thread already holds)."""

    _factory = staticmethod(_REAL_RLOCK)

    def locked(self) -> bool:  # RLock grew .locked() only in 3.12+
        probe = getattr(self._inner, "locked", None)
        if probe is None:  # pragma: no cover - version dependent
            return False
        return bool(probe())


class CheckedAsyncLock:
    """Drop-in ``asyncio.Lock`` reporting acquisitions to the registry.

    Async and thread locks share one lock graph: a coroutine holding an
    asyncio lock while a worker thread takes the same ``threading.Lock``
    pair in the opposite order is exactly the mixed-substrate deadlock
    the gateway can hit, and it shows up here as an ordinary cycle.
    """

    def __init__(self, registry: Optional[LockCheckRegistry] = None,
                 name: Optional[str] = None) -> None:
        self._inner = _REAL_ASYNC_LOCK()
        self._registry = (registry if registry is not None
                          else current_registry())
        self._name = name or _creation_site()
        if self._registry is not None:
            self._registry.register(id(self), self._name)

    async def acquire(self) -> bool:
        registry = self._registry
        if registry is not None:
            # Before the (potentially suspending) await, same as the
            # thread locks: a real deadlock still yields a report.
            registry.note_acquiring(id(self))
        acquired = await self._inner.acquire()
        if acquired and registry is not None:
            registry.note_acquired(id(self))
        return acquired

    def release(self) -> None:
        if self._registry is not None:
            self._registry.note_released(id(self))
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    async def __aenter__(self) -> None:
        await self.acquire()

    async def __aexit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name}>"


class CheckedAsyncCondition:
    """Drop-in ``asyncio.Condition`` built on a :class:`CheckedAsyncLock`.

    ``wait()`` releases the underlying lock while suspended, so the
    registry's held stack is updated around it — otherwise every waiter
    would appear to hold the lock across arbitrary awaits and the graph
    would fill with phantom edges.
    """

    def __init__(self, lock: Optional[CheckedAsyncLock] = None,
                 registry: Optional[LockCheckRegistry] = None,
                 name: Optional[str] = None) -> None:
        self._lock = (lock if lock is not None
                      else CheckedAsyncLock(registry=registry,
                                            name=name or _creation_site()))
        self._inner = _REAL_ASYNC_CONDITION(self._lock._inner)

    async def acquire(self) -> bool:
        # repro: allow=lock-discipline (the wrapper IS the lock implementation; callers hold it via 'async with')
        return await self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    async def wait(self) -> bool:
        registry = self._lock._registry
        if registry is not None:
            registry.note_released(id(self._lock))
        try:
            return await self._inner.wait()
        finally:
            # The real condition re-acquires the inner lock before wait()
            # returns (or raises CancelledError), so the bookkeeping must
            # mirror that on every path.
            if registry is not None:
                registry.note_acquired(id(self._lock))

    async def wait_for(self, predicate: "Any") -> "Any":
        result = predicate()
        while not result:
            await self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    async def __aenter__(self) -> None:
        await self.acquire()

    async def __aexit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._lock._name}>"


# -- threading.Lock patching ---------------------------------------------

_default_registry: Optional[LockCheckRegistry] = None
_installed: bool = False


def current_registry() -> Optional[LockCheckRegistry]:
    """The registry :func:`install` activated, or ``None``."""
    return _default_registry


def _caller_in_scope(prefixes: Tuple[str, ...]) -> bool:
    frame = sys._getframe(2)  # factory -> caller of threading.Lock()
    module = frame.f_globals.get("__name__", "")
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in prefixes)


def install(scope_prefixes: Tuple[str, ...] = ("repro",),
            registry: Optional[LockCheckRegistry] = None,
            raise_on_violation: bool = False) -> LockCheckRegistry:
    """Patch ``threading.Lock``/``RLock`` to hand repro code checked locks.

    Only call sites whose module name starts with one of
    ``scope_prefixes`` receive instrumented locks — stdlib and third-party
    code keeps the real primitives, bounding both the overhead and the
    blast radius.  Idempotent; returns the active registry.
    """
    global _default_registry, _installed
    if _installed:
        assert _default_registry is not None
        return _default_registry
    active = registry if registry is not None else LockCheckRegistry(
        raise_on_violation=raise_on_violation)
    _default_registry = active

    def _lock_factory() -> Union[CheckedLock, object]:
        if _caller_in_scope(scope_prefixes):
            return CheckedLock(active)
        return _REAL_LOCK()

    def _rlock_factory() -> Union[CheckedRLock, object]:
        if _caller_in_scope(scope_prefixes):
            return CheckedRLock(active)
        return _REAL_RLOCK()

    def _async_lock_factory(*args: object,
                            **kwargs: object) -> Union[CheckedAsyncLock,
                                                       object]:
        # Arguments mean someone is using a legacy loop= form or a
        # subclass contract we can't honour — hand back the real thing.
        if not args and not kwargs and _caller_in_scope(scope_prefixes):
            return CheckedAsyncLock(active)
        return _REAL_ASYNC_LOCK(*args, **kwargs)  # type: ignore[arg-type]

    def _async_condition_factory(
            *args: object,
            **kwargs: object) -> Union[CheckedAsyncCondition, object]:
        if not args and not kwargs and _caller_in_scope(scope_prefixes):
            return CheckedAsyncCondition(registry=active)
        return _REAL_ASYNC_CONDITION(*args, **kwargs)  # type: ignore[arg-type]

    threading.Lock = _lock_factory  # type: ignore[assignment]
    threading.RLock = _rlock_factory  # type: ignore[assignment]
    asyncio.Lock = _async_lock_factory  # type: ignore[assignment, misc]
    asyncio.Condition = _async_condition_factory  # type: ignore[assignment, misc]
    _installed = True
    return active


def uninstall() -> None:
    """Restore the real lock factories (threading and asyncio)."""
    global _default_registry, _installed
    threading.Lock = _REAL_LOCK  # type: ignore[assignment]
    threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
    asyncio.Lock = _REAL_ASYNC_LOCK  # type: ignore[misc]
    asyncio.Condition = _REAL_ASYNC_CONDITION  # type: ignore[misc]
    _default_registry = None
    _installed = False
