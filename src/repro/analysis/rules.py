"""The project-specific lint rules behind ``repro lint``.

Each rule guards one invariant the serving frameworks rely on; the table in
``docs/static_analysis.md`` maps every rule to the incident or design
decision that motivated it.  Rules are ~30-line :class:`ast.NodeVisitor`
subclasses registered with :func:`~repro.analysis.linter.register_rule`;
use them as templates when adding new checks.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .linter import LintRule, register_rule

#: ``time``-module attributes that read a wall clock.
_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock_gettime",
})

#: Module-level :mod:`random` functions that draw from the hidden global
#: (unseeded, process-wide) generator.  ``random.Random`` / ``SystemRandom``
#: construct explicit generators and are fine.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "betavariate", "gammavariate", "getrandbits",
    "seed", "setstate", "getstate", "binomialvariate",
})

#: ``numpy.random`` attributes that touch the legacy global state.
#: ``default_rng`` / ``Generator`` / ``SeedSequence`` are the sanctioned,
#: explicitly-seeded API and are not listed.
_NUMPY_GLOBAL_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "poisson", "standard_normal", "get_state", "set_state",
    "sample", "bytes",
})


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The rightmost name of a ``Name``/``Attribute`` chain, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class NoWallClockRule(LintRule):
    """Wall-clock reads are confined to :mod:`repro.core.clock`.

    Every other component must read time through its injected ``Clock`` —
    that indirection is what lets one policy object run unchanged under
    the simulator's ``ManualClock`` and the runtime's ``MonotonicClock``,
    and what keeps the differential tests byte-for-byte reproducible.
    """

    name = "no-wall-clock"
    description = ("time.time/time.monotonic/datetime.now are forbidden "
                   "outside core/clock.py; read the injected Clock")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "time"
                and node.attr in _WALL_CLOCK_ATTRS):
            self.report(node, f"time.{node.attr} reads the wall clock; "
                              "use the injected Clock's now()")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = _terminal_identifier(func.value)
            if (func.attr == "now" and owner == "datetime"
                    and not node.args and not node.keywords):
                self.report(node, "argless datetime.now() reads the local "
                                  "wall clock; use the injected Clock")
            elif func.attr == "utcnow" and owner == "datetime":
                self.report(node, "datetime.utcnow() reads the wall clock; "
                                  "use the injected Clock")
        self.generic_visit(node)


@register_rule
class SeededRngOnlyRule(LintRule):
    """All randomness must flow from an explicitly seeded generator.

    The fault injector, workload generators and load generators derive
    every draw from per-purpose ``random.Random(seed)`` streams so a run is
    a pure function of its seeds.  One ``random.random()`` call through the
    hidden global generator breaks that for the whole process.
    """

    name = "seeded-rng-only"
    description = ("module-level random.* / numpy.random global state is "
                   "forbidden; pass a seeded Random/Generator")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "random"
                and node.attr in _GLOBAL_RANDOM_FNS):
            self.report(node, f"random.{node.attr} uses the process-global "
                              "RNG; draw from a seeded random.Random")
        elif (isinstance(node.value, ast.Attribute)
                and node.value.attr == "random"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in ("numpy", "np")
                and node.attr in _NUMPY_GLOBAL_FNS):
            self.report(node, f"numpy.random.{node.attr} mutates numpy's "
                              "global RNG state; use "
                              "numpy.random.default_rng(seed)")
        self.generic_visit(node)


@register_rule
class NoSimtimeFloatEqRule(LintRule):
    """Simulated instants must not be compared with ``==`` / ``!=``.

    ``(epoch + offset) - epoch`` can round below ``offset``; PR 2's
    ``stalled_until`` bug froze the event loop exactly this way.  Windows
    over simulated time must use ordering comparisons, and producers of
    "strictly after" instants must go through
    :func:`repro.core.clock.at_or_after`.
    """

    name = "no-simtime-float-eq"
    description = ("== / != on clock/deadline/*_until values is forbidden; "
                   "use ordering or repro.core.clock.at_or_after")

    @staticmethod
    def _is_timeish(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            ident = _terminal_identifier(node)
            if ident is not None and (
                    ident in ("now", "deadline")
                    or ident.endswith("_until")
                    or ident.endswith("_deadline")
                    or ident.endswith("_instant")):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "now"):
                return True
        return False

    @staticmethod
    def _is_approx(expr: ast.AST) -> bool:
        return (isinstance(expr, ast.Call)
                and _terminal_identifier(expr.func) == "approx")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_approx(left) or self._is_approx(right):
                continue  # pytest.approx comparisons are the sanctioned form
            if self._is_timeish(left) or self._is_timeish(right):
                self.report(node, "float equality on a simulated instant "
                                  "(PR 2 stalled_until bug class); compare "
                                  "with </<= windows or produce the instant "
                                  "via repro.core.clock.at_or_after")
                break
        self.generic_visit(node)


@register_rule
class LockDisciplineRule(LintRule):
    """Locks are held via ``with`` and never across blocking calls.

    A bare ``.acquire()`` leaks the lock on any exception before the
    matching ``release()``; sleeping or waiting on a future while holding a
    lock starves every other thread contending for it (and under the
    simulator, deadlocks it outright).
    """

    name = "lock-discipline"
    description = ("threading locks must be held via 'with'; no "
                   "yield/sleep/Future.result while a lock is held")

    @staticmethod
    def _is_lockish(expr: ast.AST) -> bool:
        ident = _terminal_identifier(expr)
        return ident is not None and (
            "lock" in ident.lower() or "mutex" in ident.lower())

    @staticmethod
    def _blocking_call(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sleep":
            return "sleep()"
        if isinstance(func, ast.Attribute):
            if (func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"):
                return "time.sleep()"
            if func.attr == "result":
                return "Future.result()"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "acquire"
                and self._is_lockish(func.value)):
            self.report(node, "bare .acquire() leaks the lock on error "
                              "paths; hold the lock with a 'with' block")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if any(self._is_lockish(item.context_expr) for item in node.items):
            for stmt in node.body:
                self._check_held(stmt)
        self.generic_visit(node)

    def _check_held(self, stmt: ast.AST) -> None:
        """Flag yields and blocking calls anywhere under a lock's body."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.report(node, "yield while holding a lock hands "
                                  "control away with the lock still held")
            elif isinstance(node, ast.Await):
                self.report(node, "await while holding a lock blocks every "
                                  "contending thread")
            elif isinstance(node, ast.Call):
                blocking = self._blocking_call(node)
                if blocking is not None:
                    self.report(node, f"{blocking} while holding a lock "
                                      "stalls all contending threads; move "
                                      "it outside the 'with' block")


#: Calls that open a span and return a live handle the caller must close.
_SPAN_OPEN_FNS = frozenset({"begin_trace", "child_span"})

#: Handle methods that neither close nor transfer ownership of a span
#: (``marker`` opens *and* finishes its child internally).
_SPAN_NEUTRAL_METHODS = frozenset({"child_span", "annotate", "marker"})


@register_rule
class SpanMustFinishRule(LintRule):
    """Span handles must be finished or handed off on every path.

    A :class:`~repro.telemetry.spans.SpanHandle` left open never reaches
    the finished ring: it leaks in the recorder's open-span table and the
    trace it belongs to renders truncated.  Within one function, a handle
    returned by ``begin_trace``/``child_span`` must therefore either be
    ``.finish()``-ed, or escape to an owner that will close it (passed to
    a call, returned, stored into an attribute/subscript/alias, or used
    as a context manager).  Discarding the handle outright (a bare
    expression statement) can never be right.
    """

    name = "span-must-finish"
    description = ("span handles from begin_trace/child_span must be "
                   "finished or handed off; discarding one leaks an "
                   "open span")

    @staticmethod
    def _opens_span(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAN_OPEN_FNS)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    @classmethod
    def _own_nodes(cls, func: ast.AST):
        """Walk ``func``'s body without descending into nested defs
        (a closure's handles are that closure's responsibility)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    def _check_function(self, func: ast.AST) -> None:
        opened: dict = {}  # local name -> opening assignment node
        parents: dict = {}
        for parent in self._own_nodes(func):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in self._own_nodes(func):
            if (isinstance(node, ast.Expr)
                    and self._opens_span(node.value)):
                fn = node.value.func.attr  # type: ignore[union-attr]
                self.report(node, f"{fn}() result discarded; the span "
                                  "can never be finished — keep the "
                                  "handle (or use .marker() for an "
                                  "instant event)")
            elif (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._opens_span(node.value)):
                opened[node.targets[0].id] = node
        for name, open_node in opened.items():
            if not self._closed_or_escapes(func, name, parents):
                self.report(open_node,
                            f"span handle {name!r} is never finished "
                            "nor handed off in this function; call "
                            f"{name}.finish(now) on every exit path or "
                            "transfer ownership")

    def _closed_or_escapes(self, func: ast.AST, name: str,
                           parents: dict) -> bool:
        for node in self._own_nodes(func):
            if not (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute):
                if parent.attr == "finish":
                    return True  # closed (first close wins; idempotent)
                if parent.attr in _SPAN_NEUTRAL_METHODS:
                    continue  # reading the handle, not transferring it
                return True  # other attribute access: treat as escape
            if isinstance(parent, (ast.Call, ast.keyword, ast.Return,
                                   ast.withitem, ast.Subscript,
                                   ast.Starred, ast.Tuple, ast.List,
                                   ast.Dict)):
                return True  # handed off to an owner that closes it
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                return True  # aliased or stored; the store owns it now
        return False


@register_rule
class NoSwallowedEngineErrorsRule(LintRule):
    """Broad exception handlers must record, count, or re-raise.

    An engine or dispatcher thread that swallows an exception silently
    drops the query on the floor — the caller's future never resolves and
    no counter moves.  The runtime's fail-open paths all *count* the error
    (``telemetry.on_policy_error``); a handler whose body is only
    ``pass``/``continue``/``return`` hides it.
    """

    name = "no-swallowed-engine-errors"
    description = ("bare/broad except whose body neither records nor "
                   "re-raises drops engine errors silently")

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return _terminal_identifier(type_node) in self._BROAD

    @staticmethod
    def _handles(body: List[ast.stmt]) -> bool:
        """True when the handler body does something with the failure."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Call, ast.Assign,
                                     ast.AugAssign, ast.AnnAssign)):
                    return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' catches SystemExit and hides "
                              "engine errors; catch Exception and record it")
        elif self._is_broad(node.type) and not self._handles(node.body):
            self.report(node, "broad except swallows the error without "
                              "recording or re-raising; count it (e.g. "
                              "telemetry.on_policy_error()) or re-raise")
        self.generic_visit(node)
