"""The project-specific lint rules behind ``repro lint``.

Each rule guards one invariant the serving frameworks rely on; the table in
``docs/static_analysis.md`` maps every rule to the incident or design
decision that motivated it.  Rules are ~30-line :class:`ast.NodeVisitor`
subclasses registered with :func:`~repro.analysis.linter.register_rule`;
use them as templates when adding new checks.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .linter import LintRule, register_rule

#: ``time``-module attributes that read a wall clock.
_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock_gettime",
})

#: Module-level :mod:`random` functions that draw from the hidden global
#: (unseeded, process-wide) generator.  ``random.Random`` / ``SystemRandom``
#: construct explicit generators and are fine.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "betavariate", "gammavariate", "getrandbits",
    "seed", "setstate", "getstate", "binomialvariate",
})

#: ``numpy.random`` attributes that touch the legacy global state.
#: ``default_rng`` / ``Generator`` / ``SeedSequence`` are the sanctioned,
#: explicitly-seeded API and are not listed.
_NUMPY_GLOBAL_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "poisson", "standard_normal", "get_state", "set_state",
    "sample", "bytes",
})


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The rightmost name of a ``Name``/``Attribute`` chain, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _chain_identifiers(node: ast.AST) -> List[str]:
    """Every name along a ``Name``/``Attribute`` chain, leftmost first."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    names.reverse()
    return names


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested defs
    (a nested function's body is that function's responsibility)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


@register_rule
class NoWallClockRule(LintRule):
    """Wall-clock reads are confined to :mod:`repro.core.clock`.

    Every other component must read time through its injected ``Clock`` —
    that indirection is what lets one policy object run unchanged under
    the simulator's ``ManualClock`` and the runtime's ``MonotonicClock``,
    and what keeps the differential tests byte-for-byte reproducible.
    """

    name = "no-wall-clock"
    description = ("time.time/time.monotonic/time.sleep/datetime.now are "
                   "forbidden outside core/clock.py; read (and sleep on) "
                   "the injected Clock")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "time":
            if node.attr in _WALL_CLOCK_ATTRS:
                self.report(node, f"time.{node.attr} reads the wall clock; "
                                  "use the injected Clock's now()")
            elif node.attr == "sleep":
                self.report(node, "time.sleep is an untracked timed wait; "
                                  "use the injected SleepingClock's "
                                  "sleep() so simulated runs stay "
                                  "deterministic")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = _terminal_identifier(func.value)
            if (func.attr == "now" and owner == "datetime"
                    and not node.args and not node.keywords):
                self.report(node, "argless datetime.now() reads the local "
                                  "wall clock; use the injected Clock")
            elif func.attr == "utcnow" and owner == "datetime":
                self.report(node, "datetime.utcnow() reads the wall clock; "
                                  "use the injected Clock")
        self.generic_visit(node)


@register_rule
class SeededRngOnlyRule(LintRule):
    """All randomness must flow from an explicitly seeded generator.

    The fault injector, workload generators and load generators derive
    every draw from per-purpose ``random.Random(seed)`` streams so a run is
    a pure function of its seeds.  One ``random.random()`` call through the
    hidden global generator breaks that for the whole process.
    """

    name = "seeded-rng-only"
    description = ("module-level random.* / numpy.random global state is "
                   "forbidden; pass a seeded Random/Generator")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "random"
                and node.attr in _GLOBAL_RANDOM_FNS):
            self.report(node, f"random.{node.attr} uses the process-global "
                              "RNG; draw from a seeded random.Random")
        elif (isinstance(node.value, ast.Attribute)
                and node.value.attr == "random"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in ("numpy", "np")
                and node.attr in _NUMPY_GLOBAL_FNS):
            self.report(node, f"numpy.random.{node.attr} mutates numpy's "
                              "global RNG state; use "
                              "numpy.random.default_rng(seed)")
        self.generic_visit(node)


@register_rule
class NoSimtimeFloatEqRule(LintRule):
    """Simulated instants must not be compared with ``==`` / ``!=``.

    ``(epoch + offset) - epoch`` can round below ``offset``; PR 2's
    ``stalled_until`` bug froze the event loop exactly this way.  Windows
    over simulated time must use ordering comparisons, and producers of
    "strictly after" instants must go through
    :func:`repro.core.clock.at_or_after`.
    """

    name = "no-simtime-float-eq"
    description = ("== / != on clock/deadline/*_until values is forbidden; "
                   "use ordering or repro.core.clock.at_or_after")

    @staticmethod
    def _is_timeish(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            ident = _terminal_identifier(node)
            if ident is not None and (
                    ident in ("now", "deadline")
                    or ident.endswith("_until")
                    or ident.endswith("_deadline")
                    or ident.endswith("_instant")):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "now"):
                return True
        return False

    @staticmethod
    def _is_approx(expr: ast.AST) -> bool:
        return (isinstance(expr, ast.Call)
                and _terminal_identifier(expr.func) == "approx")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_approx(left) or self._is_approx(right):
                continue  # pytest.approx comparisons are the sanctioned form
            if self._is_timeish(left) or self._is_timeish(right):
                self.report(node, "float equality on a simulated instant "
                                  "(PR 2 stalled_until bug class); compare "
                                  "with </<= windows or produce the instant "
                                  "via repro.core.clock.at_or_after")
                break
        self.generic_visit(node)


@register_rule
class LockDisciplineRule(LintRule):
    """Locks are held via ``with`` and never across blocking calls.

    A bare ``.acquire()`` leaks the lock on any exception before the
    matching ``release()``; sleeping or waiting on a future while holding a
    lock starves every other thread contending for it (and under the
    simulator, deadlocks it outright).
    """

    name = "lock-discipline"
    description = ("threading locks must be held via 'with'; no "
                   "yield/sleep/Future.result while a lock is held")

    @staticmethod
    def _is_lockish(expr: ast.AST) -> bool:
        ident = _terminal_identifier(expr)
        return ident is not None and (
            "lock" in ident.lower() or "mutex" in ident.lower())

    @staticmethod
    def _blocking_call(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sleep":
            return "sleep()"
        if isinstance(func, ast.Attribute):
            if (func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"):
                return "time.sleep()"
            if func.attr == "result":
                return "Future.result()"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "acquire"
                and self._is_lockish(func.value)):
            self.report(node, "bare .acquire() leaks the lock on error "
                              "paths; hold the lock with a 'with' block")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if any(self._is_lockish(item.context_expr) for item in node.items):
            for stmt in node.body:
                self._check_held(stmt)
        self.generic_visit(node)

    def _check_held(self, stmt: ast.AST) -> None:
        """Flag yields and blocking calls anywhere under a lock's body."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self.report(node, "yield while holding a lock hands "
                                  "control away with the lock still held")
            elif isinstance(node, ast.Await):
                self.report(node, "await while holding a lock blocks every "
                                  "contending thread")
            elif isinstance(node, ast.Call):
                blocking = self._blocking_call(node)
                if blocking is not None:
                    self.report(node, f"{blocking} while holding a lock "
                                      "stalls all contending threads; move "
                                      "it outside the 'with' block")


#: Calls that open a span and return a live handle the caller must close.
_SPAN_OPEN_FNS = frozenset({"begin_trace", "child_span"})

#: Handle methods that neither close nor transfer ownership of a span
#: (``marker`` opens *and* finishes its child internally).
_SPAN_NEUTRAL_METHODS = frozenset({"child_span", "annotate", "marker"})


@register_rule
class SpanMustFinishRule(LintRule):
    """Span handles must be finished or handed off on every path.

    A :class:`~repro.telemetry.spans.SpanHandle` left open never reaches
    the finished ring: it leaks in the recorder's open-span table and the
    trace it belongs to renders truncated.  Within one function, a handle
    returned by ``begin_trace``/``child_span`` must therefore either be
    ``.finish()``-ed, or escape to an owner that will close it (passed to
    a call, returned, stored into an attribute/subscript/alias, or used
    as a context manager).  Discarding the handle outright (a bare
    expression statement) can never be right.
    """

    name = "span-must-finish"
    description = ("span handles from begin_trace/child_span must be "
                   "finished or handed off; discarding one leaks an "
                   "open span")

    @staticmethod
    def _opens_span(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAN_OPEN_FNS)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    @staticmethod
    def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Walk ``func``'s body without descending into nested defs
        (a closure's handles are that closure's responsibility)."""
        return _own_nodes(func)

    def _check_function(self, func: ast.AST) -> None:
        opened: dict = {}  # local name -> opening assignment node
        parents: dict = {}
        for parent in self._own_nodes(func):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in self._own_nodes(func):
            if (isinstance(node, ast.Expr)
                    and self._opens_span(node.value)):
                fn = node.value.func.attr  # type: ignore[union-attr]
                self.report(node, f"{fn}() result discarded; the span "
                                  "can never be finished — keep the "
                                  "handle (or use .marker() for an "
                                  "instant event)")
            elif (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._opens_span(node.value)):
                opened[node.targets[0].id] = node
        for name, open_node in opened.items():
            if not self._closed_or_escapes(func, name, parents):
                self.report(open_node,
                            f"span handle {name!r} is never finished "
                            "nor handed off in this function; call "
                            f"{name}.finish(now) on every exit path or "
                            "transfer ownership")

    def _closed_or_escapes(self, func: ast.AST, name: str,
                           parents: dict) -> bool:
        for node in self._own_nodes(func):
            if not (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute):
                if parent.attr == "finish":
                    return True  # closed (first close wins; idempotent)
                if parent.attr in _SPAN_NEUTRAL_METHODS:
                    continue  # reading the handle, not transferring it
                return True  # other attribute access: treat as escape
            if isinstance(parent, (ast.Call, ast.keyword, ast.Return,
                                   ast.withitem, ast.Subscript,
                                   ast.Starred, ast.Tuple, ast.List,
                                   ast.Dict)):
                return True  # handed off to an owner that closes it
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                return True  # aliased or stored; the store owns it now
        return False


@register_rule
class NoSwallowedEngineErrorsRule(LintRule):
    """Broad exception handlers must record, count, or re-raise.

    An engine or dispatcher thread that swallows an exception silently
    drops the query on the floor — the caller's future never resolves and
    no counter moves.  The runtime's fail-open paths all *count* the error
    (``telemetry.on_policy_error``); a handler whose body is only
    ``pass``/``continue``/``return`` hides it.
    """

    name = "no-swallowed-engine-errors"
    description = ("bare/broad except whose body neither records nor "
                   "re-raises drops engine errors silently")

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return _terminal_identifier(type_node) in self._BROAD

    @staticmethod
    def _handles(body: List[ast.stmt]) -> bool:
        """True when the handler body does something with the failure."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Call, ast.Assign,
                                     ast.AugAssign, ast.AnnAssign)):
                    return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' catches SystemExit and hides "
                              "engine errors; catch Exception and record it")
        elif self._is_broad(node.type) and not self._handles(node.body):
            self.report(node, "broad except swallows the error without "
                              "recording or re-raising; count it (e.g. "
                              "telemetry.on_policy_error()) or re-raise")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Concurrency-safety rules for the async / multi-process era (PR 9).
# The gateway runs BouncerPolicy inside asyncio workers, forked processes
# and a shared-memory seqlock; one blocking call in a coroutine or one torn
# snapshot read silently destroys both the microsecond latency budget and
# the bit-identical-replay guarantee.  These rules make those invariants
# lintable.
# ---------------------------------------------------------------------------

#: ``subprocess`` entry points that block until the child completes (or,
#: for ``Popen``, fork on the event-loop thread).
_SUBPROCESS_BLOCKING = frozenset({
    "run", "call", "check_call", "check_output", "getoutput",
    "getstatusoutput", "Popen",
})

#: Socket methods that are unambiguously blocking network I/O.
_SOCKET_ALWAYS_BLOCKING = frozenset({
    "recv", "recv_into", "recvfrom", "recvfrom_into", "sendall",
})

#: Socket methods flagged only on a socket-looking receiver (the names are
#: common enough elsewhere — e.g. ``visitor.accept`` — to need the guard).
_SOCKET_GUARDED_BLOCKING = frozenset({"accept", "connect", "makefile"})

#: Receiver identifiers treated as sockets/connections for the guarded set.
_SOCKISH = ("sock", "conn")


def _is_sockish(expr: ast.AST) -> bool:
    ident = _terminal_identifier(expr)
    return ident is not None and any(
        part in ident.lower() for part in _SOCKISH)


@register_rule
class AsyncNoBlockingRule(LintRule):
    """Coroutines must never block the event loop.

    One synchronous ``time.sleep``, file read, socket call, lock acquire
    or ``Future.result`` inside ``async def`` stalls *every* connection
    multiplexed on that loop — a gateway worker mid-``time.sleep`` is
    indistinguishable from an overloaded backend, so the admission tier
    starts rejecting for latency it caused itself.  Anything directly
    ``await``-ed is exempt (that is the non-blocking form).
    """

    name = "async-no-blocking"
    description = ("blocking calls (time.sleep, sync file/socket I/O, "
                   "Lock.acquire, Future.result, subprocess) are "
                   "forbidden inside async def")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        awaited = set()
        body = list(_own_nodes(node))
        for sub in body:
            if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
                awaited.add(id(sub.value))
        for sub in body:
            if isinstance(sub, ast.Call) and id(sub) not in awaited:
                problem = self._blocking_shape(sub)
                if problem is not None:
                    self.report(sub, problem)
        self.generic_visit(node)

    @staticmethod
    def _blocking_shape(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return ("open() is synchronous file I/O on the event-loop "
                        "thread; move it off-loop (run_in_executor) or "
                        "out of the coroutine")
            if func.id == "sleep":
                return ("bare sleep() in a coroutine either blocks the "
                        "loop (time.sleep) or is an un-awaited "
                        "asyncio.sleep; await asyncio.sleep() instead")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        owner_name = _terminal_identifier(owner)
        if func.attr == "sleep" and owner_name == "time":
            return ("time.sleep() stalls the whole event loop; await "
                    "asyncio.sleep() (loopwatch fails runs on exactly "
                    "this shape)")
        if owner_name == "subprocess" and func.attr in _SUBPROCESS_BLOCKING:
            return (f"subprocess.{func.attr} blocks the loop waiting on "
                    "the child; use asyncio.create_subprocess_exec")
        if func.attr in _SOCKET_ALWAYS_BLOCKING:
            return (f".{func.attr}() is blocking socket I/O; use asyncio "
                    "streams (or hand the socket to the loop)")
        if func.attr in _SOCKET_GUARDED_BLOCKING and _is_sockish(owner):
            return (f"socket .{func.attr}() blocks the loop; use asyncio "
                    "streams / loop.sock_* instead")
        if func.attr == "acquire" and LockDisciplineRule._is_lockish(owner):
            return ("Lock.acquire in a coroutine blocks the loop (a "
                    "threading lock) or is an un-awaited coroutine (an "
                    "asyncio lock); use 'async with'")
        if func.attr == "result" and not node.args and not node.keywords:
            return ("Future.result() blocks until completion; await the "
                    "future instead")
        return None


@register_rule
class NoOrphanTaskRule(LintRule):
    """``create_task``/``ensure_future`` results must be kept.

    The event loop holds only a *weak* reference to a task: a handle
    discarded as a bare expression statement can be garbage-collected
    mid-flight and silently cancelled, and any exception it raised is
    reported to nobody.  Store the handle, await it, or hand it to an
    owner that will.
    """

    name = "no-orphan-task"
    description = ("create_task/ensure_future results must be stored, "
                   "awaited or handed off; a dropped task is silently "
                   "GC-cancelled")

    _SPAWNERS = frozenset({"create_task", "ensure_future"})

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            ident = _terminal_identifier(value.func)
            if ident in self._SPAWNERS:
                self.report(node, f"{ident}() result discarded; the loop "
                                  "keeps only a weak reference, so the "
                                  "task can be GC-cancelled mid-flight — "
                                  "store the handle or await it")
        self.generic_visit(node)


#: Constructors whose instances must never cross a fork/spawn boundary.
_UNPICKLABLE_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread", "socket", "create_connection",
})

#: Identifier shapes treated as live OS handles in a process payload.
_HANDLE_SUFFIXES = ("_sock", "_socket", "_conn", "_lock", "_thread")
_HANDLE_EXACT = frozenset({"sock", "socket", "conn", "connection",
                           "lock", "mutex", "thread"})


def _is_handle_identifier(ident: str) -> bool:
    lowered = ident.lower()
    return (lowered in _HANDLE_EXACT
            or lowered.endswith(_HANDLE_SUFFIXES)
            or "lock" in lowered or "mutex" in lowered)


@register_rule
class ForkSafetyRule(LintRule):
    """Process payloads must be picklable and handle-free.

    Under ``spawn`` an unpicklable target (lambda, nested function,
    bound method) fails at ``start()``; under ``fork`` it *appears* to
    work while silently duplicating locks mid-acquisition, live sockets
    and running threads into the child — the classic source of one-in-a-
    thousand worker wedges.  Worker entry points must be module-level
    functions and ``args`` must carry plain data (the gateway's
    ``WorkerSpec`` shape).
    """

    name = "fork-safety"
    description = ("multiprocessing targets must be module-level "
                   "functions; args must not carry locks, threads or "
                   "open sockets")

    def visit_Module(self, node: ast.Module) -> None:
        # Names of functions defined inside another function anywhere in
        # this file: passing one as a Process target cannot be pickled.
        self._nested_defs = set()
        for func in ast.walk(node):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(func):
                    if child is not func and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._nested_defs.add(child.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _terminal_identifier(node.func) == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._check_target(keyword.value)
                elif keyword.arg == "args":
                    self._check_payload(keyword.value)
        self.generic_visit(node)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Lambda):
            self.report(target, "lambda Process target cannot be pickled "
                                "under spawn; use a module-level function")
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self.report(target, "bound-method Process target drags the "
                                "whole object (locks, sockets, threads) "
                                "across the fork; use a module-level "
                                "function taking a picklable spec")
        elif (isinstance(target, ast.Name)
                and target.id in getattr(self, "_nested_defs", set())):
            self.report(target, f"nested function {target.id!r} as a "
                                "Process target cannot be pickled under "
                                "spawn; move the entry point to module "
                                "level")

    def _check_payload(self, payload: ast.AST) -> None:
        elements = (payload.elts if isinstance(payload, (ast.Tuple,
                                                         ast.List))
                    else [payload])
        for element in elements:
            if (isinstance(element, ast.Call)
                    and _terminal_identifier(element.func)
                    in _UNPICKLABLE_CTORS):
                self.report(element, "constructing a lock/thread/socket "
                                     "in a Process payload hands the "
                                     "child a live handle; pass plain "
                                     "data and rebuild in the worker")
                continue
            ident = _terminal_identifier(element)
            if ident is not None and _is_handle_identifier(ident):
                self.report(element, f"{ident!r} looks like a live "
                                     "lock/socket/thread handle in a "
                                     "Process payload; fork duplicates "
                                     "it mid-state — pass plain data "
                                     "(paths, names, specs) instead")


@register_rule
class ShmLifecycleRule(LintRule):
    """Owned shared-memory segments must be released on every exit path.

    A ``SharedMemory(create=True)`` segment outlives the process: if the
    creating function can exit without ``close()``+``unlink()`` reachable
    (context manager, or cleanup in a ``finally``/``except``), a crash
    between creation and hand-off leaks the segment in ``/dev/shm`` until
    reboot — and the resource tracker's warnings are the only witness.
    """

    name = "shm-lifecycle"
    description = ("SharedMemory(create=True) needs close()+unlink() "
                   "reachable on every exit path (try/finally, except "
                   "cleanup, or a context manager)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    @staticmethod
    def _creates_segment(expr: ast.AST) -> bool:
        return (isinstance(expr, ast.Call)
                and _terminal_identifier(expr.func) == "SharedMemory"
                and any(kw.arg == "create"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in expr.keywords))

    def _check_function(self, func: ast.AST) -> None:
        body = list(_own_nodes(func))
        owned: dict = {}
        for node in body:
            if (isinstance(node, ast.Expr)
                    and self._creates_segment(node.value)):
                self.report(node, "SharedMemory(create=True) handle "
                                  "discarded; the segment can never be "
                                  "closed or unlinked")
            elif (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._creates_segment(node.value)):
                owned[node.targets[0].id] = node
        for name, open_node in owned.items():
            if not self._released(name, body):
                self.report(open_node,
                            f"segment {name!r} has no close()/unlink() "
                            "reachable on failure paths; wrap the "
                            "post-create section in try/except (or "
                            "try/finally) that releases it, or use a "
                            "context manager")

    @staticmethod
    def _released(name: str, body: List[ast.AST]) -> bool:
        for node in body:
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
            if isinstance(node, ast.Try):
                cleanup: List[ast.stmt] = list(node.finalbody)
                for handler in node.handlers:
                    cleanup.extend(handler.body)
                for stmt in cleanup:
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Attribute)
                                and sub.attr in ("unlink", "close")
                                and isinstance(sub.value, ast.Name)
                                and sub.value.id == name
                                and sub.attr == "unlink"):
                            return True
        return False


def _seqish(expr: ast.AST) -> bool:
    """True when a struct/name smells like the seqlock generation word."""
    ident = _terminal_identifier(expr)
    if ident is None:
        return False
    lowered = ident.lower()
    return "gen" in lowered or "seq" in lowered


@register_rule
class SeqlockDisciplineRule(LintRule):
    """Shared-memory seqlock access keeps the even-odd protocol.

    The snapshot board's only consistency guarantee is the sequence
    dance: writers bump the generation odd, copy, bump it even; readers
    copy only inside a retry loop that reads the generation before and
    re-checks it after.  A payload read outside that loop (or a write
    outside the bumps) can observe — or publish — a torn snapshot, which
    silently breaks bit-identical replay.

    Scope: expressions reaching a ``SharedMemory`` buffer — an attribute
    chain ending ``.buf`` through a name containing ``shm``, or a local
    alias assigned from one.  ``struct.pack_into``/``unpack_from`` and
    subscripts on such buffers are classified as sequence accesses (the
    struct name contains ``gen``/``seq``) or payload accesses.
    """

    name = "seqlock-discipline"
    description = ("seqlock payload reads belong inside the even-"
                   "sequence retry loop; writers must bump the sequence "
                   "before and after the copy")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    @staticmethod
    def _is_shm_buf(expr: ast.AST, aliases: set) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in aliases
        if isinstance(expr, ast.Attribute) and expr.attr == "buf":
            return any("shm" in part.lower()
                       for part in _chain_identifiers(expr.value))
        return False

    @staticmethod
    def _position(node: ast.AST) -> tuple:
        return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))

    def _check_function(self, func: ast.AST) -> None:
        body = list(_own_nodes(func))
        aliases = {node.targets[0].id for node in body
                   if isinstance(node, ast.Assign)
                   and len(node.targets) == 1
                   and isinstance(node.targets[0], ast.Name)
                   and self._is_shm_buf(node.value, set())}
        parents: dict = {func: None}
        for parent in body:
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for child in ast.iter_child_nodes(func):
            parents[child] = func

        seq_reads: List[tuple] = []
        seq_writes: List[tuple] = []
        data_reads: List[ast.AST] = []
        data_writes: List[ast.AST] = []
        for node in body:
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("unpack_from", "pack_into")
                    and node.args
                    and self._is_shm_buf(node.args[0], aliases)):
                bucket = (seq_reads if node.func.attr == "unpack_from"
                          else seq_writes)
                if _seqish(node.func.value):
                    bucket.append(self._position(node))
                elif node.func.attr == "pack_into":
                    data_writes.append(node)
                else:
                    data_reads.append(node)
            elif (isinstance(node, ast.Subscript)
                    and self._is_shm_buf(node.value, aliases)):
                if isinstance(node.ctx, ast.Store):
                    data_writes.append(node)
                elif isinstance(node.ctx, ast.Load):
                    data_reads.append(node)

        self._check_writer(seq_writes, data_writes)
        self._check_reader(seq_reads, data_reads, parents)

    def _check_writer(self, seq_writes: List[tuple],
                      data_writes: List[ast.AST]) -> None:
        if not data_writes:
            return
        ordered = sorted(data_writes, key=self._position)
        first, last = ordered[0], ordered[-1]
        if not any(pos < self._position(first) for pos in seq_writes):
            self.report(first, "shared-buffer write without an odd "
                               "sequence bump before it; a concurrent "
                               "reader can copy a half-written snapshot")
        if not any(pos > self._position(last) for pos in seq_writes):
            self.report(last, "shared-buffer write without the closing "
                              "even sequence bump after it; readers "
                              "will spin on a forever-odd generation")

    def _check_reader(self, seq_reads: List[tuple],
                      data_reads: List[ast.AST], parents: dict) -> None:
        for node in data_reads:
            loop = parents.get(node)
            while loop is not None and not isinstance(
                    loop, (ast.For, ast.While)):
                loop = parents.get(loop)
            if loop is None:
                self.report(node, "seqlock payload read outside the "
                                  "even-sequence retry loop; a "
                                  "concurrent publish makes this a torn "
                                  "snapshot")
                continue
            position = self._position(node)
            loop_start = self._position(loop)
            in_loop = [pos for pos in seq_reads if pos >= loop_start]
            if not any(pos < position for pos in in_loop):
                self.report(node, "seqlock payload read before the "
                                  "generation word is sampled; read the "
                                  "(even) sequence first")
            if not any(pos > position for pos in in_loop):
                self.report(node, "seqlock payload read is never "
                                  "re-validated; re-read the generation "
                                  "after the copy and retry on mismatch")


def _pool_release_target(node: ast.AST) -> Optional[str]:
    """The name released by a ``<pool>.release(name)`` call, else None.

    Scope guard: the receiver chain must contain an identifier with
    "pool" in it (``pool``, ``self._query_pool``, ...), so the ubiquitous
    ``lock.release()`` never matches.
    """
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Name)
            and any("pool" in part.lower()
                    for part in _chain_identifiers(node.func.value))):
        return node.args[0].id
    return None


@register_rule
class PoolDisciplineRule(LintRule):
    """Released pool objects are dead: no further use, no second release.

    ``QueryPool.release`` hands the object to the free list; the next
    ``acquire`` re-initializes the *same* object for an unrelated query.
    Using a name after releasing it therefore reads (or mutates) another
    live query's state, and releasing it twice puts one object on the
    free list twice — two acquires then share a query.  Both corruptions
    are silent until a report's counts drift, which is exactly the class
    of bug the bit-identity differential guards exist to catch late;
    this rule catches it at lint time.

    The analysis is block-structured and flow-insensitive across
    branches: a release only poisons the *following sibling statements*
    of the block it textually occurs in (plus nested blocks entered from
    there), so ``if pool is not None: pool.release(q)`` does not flag an
    unrelated use of ``q`` on the pool-less path.  Rebinding the name
    (``q = pool.acquire(...)``, a loop target, ...) clears the poison.
    Cross-iteration and cross-function aliasing are out of scope.
    """

    name = "pool-discipline"
    description = ("an object passed to <pool>.release() must not be "
                   "used or released again; the pool recycles it into "
                   "the next acquire")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan(node.body, {})
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan(node.body, {})
        self.generic_visit(node)

    @staticmethod
    def _target_stores(target: ast.AST) -> List[str]:
        return [name.id for name in ast.walk(target)
                if isinstance(name, ast.Name)
                and isinstance(name.ctx, ast.Store)]

    def _scan(self, stmts: List[ast.stmt], live: dict) -> None:
        """Walk one statement block; ``live`` maps released names to the
        release call that killed them."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes own their names
            if isinstance(stmt, ast.If):
                self._visit_simple(stmt.test, live)
                self._scan(stmt.body, dict(live))
                self._scan(stmt.orelse, dict(live))
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_simple(stmt.iter, live)
                inner = dict(live)
                for name in self._target_stores(stmt.target):
                    inner.pop(name, None)
                self._scan(stmt.body, inner)
                self._scan(stmt.orelse, dict(live))
                continue
            if isinstance(stmt, ast.While):
                self._visit_simple(stmt.test, live)
                self._scan(stmt.body, dict(live))
                self._scan(stmt.orelse, dict(live))
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._visit_simple(item.context_expr, live)
                self._scan(stmt.body, live)  # body runs unconditionally
                continue
            if isinstance(stmt, ast.Try):
                self._scan(stmt.body, dict(live))
                for handler in stmt.handlers:
                    self._scan(handler.body, dict(live))
                self._scan(stmt.orelse, dict(live))
                self._scan(stmt.finalbody, live)
                continue
            self._visit_simple(stmt, live)

    def _visit_simple(self, node: ast.AST, live: dict) -> None:
        """One simple statement (or expression): report uses of released
        names, apply stores, then record this statement's releases."""
        releases: List[str] = []
        release_args: set = set()
        for child in ast.walk(node):
            target = _pool_release_target(child)
            if target is not None:
                releases.append(target)
                release_args.add(id(child.args[0]))  # type: ignore[attr-defined]
        for child in ast.walk(node):
            if not isinstance(child, ast.Name) or child.id not in live:
                continue
            if isinstance(child.ctx, ast.Store):
                live.pop(child.id, None)
            elif isinstance(child.ctx, ast.Load):
                if id(child) in release_args:
                    self.report(child, f"{child.id!r} released to the "
                                       f"pool twice; two later acquires "
                                       f"will share one query object")
                else:
                    self.report(child, f"{child.id!r} is used after "
                                       f"pool.release(); the pool may "
                                       f"already have recycled it into "
                                       f"a different live query")
                live.pop(child.id, None)  # one report per poisoning
        for name in releases:
            live[name] = node
