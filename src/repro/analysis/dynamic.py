"""The ``repro lint --dynamic`` workload: concurrency checks at runtime.

Static rules cannot see runtime acquisition order, event-loop stalls or
cross-process races, so the dynamic check drives the real components the
way the differential tests do, fully instrumented:

* **lockcheck** — the sim + threaded-runtime workload from PR 4, plus the
  asyncio side: every ``threading`` *and* ``asyncio`` lock constructed
  from repro code lands in one global lock graph; any cycle is a
  potential deadlock, reported with both acquisition stacks.
* **loopwatch** — a single-shard gateway worker is run *in this process*
  (its asyncio loop on a side thread) under a
  :class:`~repro.analysis.loopwatch.LoopWatch` while a decide burst and
  snapshot publishes drive it; any loop callback over budget fails the
  run.
* **gateway** — a two-shard :class:`~repro.gateway.GatewayServer` fleet
  (real ``spawn`` processes) serves interleaved publish/decide rounds,
  exercising the fork boundary and the shared-memory board end to end.
* **seqlock race** — a writer thread republishes epoch-stamped snapshot
  sets as fast as it can while this thread reads the board; any view
  mixing epochs is a torn read (the exact failure the seqlock exists to
  prevent).  ``buggy_writer=True`` seeds a write that skips the
  generation bumps, proving the harness *can* see a tear.
"""

from __future__ import annotations

import os
import random
import shutil
import socket
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.types import Query
from .lockcheck import LockCheckRegistry, LockOrderViolation, install, uninstall
from .loopwatch import LoopWatch, StallEvent

#: Queries driven through each framework; small enough to finish in a
#: couple of seconds, large enough to exercise every metric-point lock.
_SIM_QUERIES = 2_000
_RUNTIME_QUERIES = 300

#: Publish/decide rounds against the spawned two-shard gateway fleet.
_GATEWAY_ROUNDS = 8
_GATEWAY_BATCH = 256

#: Rounds and batch size for the in-process monitored-loop worker.
_LOOP_ROUNDS = 6
_LOOP_BATCH = 64

#: Per-callback budget for the monitored loop, in seconds.  A healthy
#: worker callback (decide batch of 64) runs in well under a millisecond;
#: the generous budget keeps CI scheduler noise out of the signal while
#: still catching any real blocking call by orders of magnitude.
_LOOP_BUDGET = 0.25

#: Reader/writer race harness defaults.
_RACE_READS = 400
_RACE_PUBLISHES = 200


@dataclass(frozen=True)
class SeqlockRaceReport:
    """What the seqlock reader observed while the writer raced it."""

    #: Coherent views the reader obtained.
    reads: int
    #: Views that mixed snapshot epochs — torn reads (must be 0).
    torn: int
    #: Distinct publish epochs observed across all reads.
    generations: int


@dataclass
class DynamicCheckResult:
    """Everything ``repro lint --dynamic`` measured, one object."""

    registry: LockCheckRegistry
    stalls: List[StallEvent] = field(default_factory=list)
    race: Optional[SeqlockRaceReport] = None
    #: Decisions served by the spawned gateway fleet (``None`` when the
    #: gateway leg was skipped).
    gateway_decisions: Optional[int] = None
    #: Decisions served by the in-process monitored-loop worker.
    loop_decisions: Optional[int] = None
    loop_budget: float = _LOOP_BUDGET

    def problems(self) -> List[str]:
        """Human-readable failures; empty means the run is clean."""
        problems: List[str] = []
        for violation in self.registry.violations:
            problems.append(violation.format())
        for stall in self.stalls:
            problems.append(stall.format())
        if self.race is not None and self.race.torn:
            problems.append(
                f"seqlock race: {self.race.torn} torn read(s) out of "
                f"{self.race.reads} — the board published a view readers "
                f"can observe half-written")
        if self.loop_decisions == 0:
            problems.append("monitored-loop worker served no decisions")
        if self.gateway_decisions == 0:
            problems.append("gateway fleet served no decisions")
        return problems

    def ok(self) -> bool:
        return not self.problems()


def run_dynamic_check(seed: int = 11,
                      gateway: bool = True) -> DynamicCheckResult:
    """Run every instrumented workload; returns the combined result.

    ``gateway=False`` skips the spawned two-shard fleet (the slowest
    leg) — targeted tests use it to keep the in-process checks fast.
    """
    registry = install()
    result = DynamicCheckResult(registry=registry)
    try:
        _sim_workload(seed)
        _runtime_workload(seed)
        watch = LoopWatch(budget=_LOOP_BUDGET)
        watch.install()
        try:
            result.loop_decisions = _loop_workload(seed)
        finally:
            watch.uninstall()
        result.stalls = watch.stalls
        result.race = run_seqlock_race(seed)
        if gateway:
            result.gateway_decisions = _gateway_workload(seed)
    finally:
        uninstall()
    return result


def _sim_workload(seed: int) -> None:
    from ..bench import make_bouncer, simulation_mix
    from ..sim import run_simulation

    mix = simulation_mix()
    run_simulation(mix, make_bouncer(),
                   rate_qps=1.2 * mix.full_load_qps(50),
                   num_queries=_SIM_QUERIES, parallelism=50, seed=seed)


def _runtime_workload(seed: int) -> None:
    from ..bench import make_bouncer, simulation_mix
    from ..faults import (FaultInjector, FaultKind, FaultPlan, FaultSpec,
                          RetryConfig, RetryPolicy)
    from ..runtime import AdmissionServer, LoadGenerator
    from ..telemetry import DecisionTracer, Telemetry

    mix = simulation_mix()
    names = list(mix.type_names)

    def factory(rng: random.Random) -> Query:
        return Query(qtype=rng.choice(names))

    telemetry = Telemetry(tracer=DecisionTracer(sample_rate=0.25))
    # A mild probabilistic drop window keeps the injector's RLock ->
    # telemetry-registry nesting (the deepest lock chain in the tree) on
    # the exercised path.
    plan = FaultPlan(name="lockcheck-probe", seed=seed, specs=(
        FaultSpec(kind=FaultKind.QUEUE_DROP, start=0.0, probability=0.05),))
    server = AdmissionServer(make_bouncer(), handler=lambda query: None,
                             workers=4, telemetry=telemetry,
                             fault_injector=FaultInjector(plan, telemetry))
    server.start()
    try:
        retry = RetryPolicy(RetryConfig(max_retries=1, base_delay=0.001,
                                        max_delay=0.002), seed=seed)
        generator = LoadGenerator(server, factory, rate_qps=3_000.0,
                                  seed=seed, retry=retry, deadline=0.25)
        generator.run(_RUNTIME_QUERIES, result_timeout=10.0)
    finally:
        server.stop()


def _gateway_workload(seed: int) -> int:
    """Publish/decide rounds against a real two-shard spawned fleet."""
    from ..bench.gateway_perf import (GATEWAY_TYPES, build_policy_spec,
                                      build_publication)
    from ..gateway import GatewayServer

    rng = random.Random(seed)
    names = list(GATEWAY_TYPES)
    weights = [GATEWAY_TYPES[name][3] for name in names]
    decisions = 0
    server = GatewayServer(build_policy_spec(), shards=2)
    server.start()
    try:
        for round_index in range(_GATEWAY_ROUNDS):
            types, general = build_publication(round_index, seed)
            server.publish(types, general)
            qtypes = rng.choices(names, weights=weights, k=_GATEWAY_BATCH)
            decisions += len(server.decide_many(qtypes))
        server.collect_stats()
    finally:
        server.stop()
    return decisions


def _connect_with_retry(path: str, timeout: float = 30.0) -> socket.socket:
    from ..core.clock import MonotonicClock

    clock = MonotonicClock()
    deadline = clock.now() + timeout
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if clock.now() > deadline:
                raise
            clock.sleep(0.02)


def _loop_workload(seed: int) -> int:
    """Drive a gateway worker's asyncio loop *in this process*.

    The worker's event loop runs on a side thread so the installed
    :class:`LoopWatch` times its callbacks; this thread plays the parent,
    publishing snapshots and sending decide frames over the unix socket.
    """
    from ..bench.gateway_perf import (GATEWAY_TYPES, build_policy_spec,
                                      build_publication)
    from ..gateway.snapshot import SnapshotBoard
    from ..gateway.worker import WorkerSpec, worker_main

    rng = random.Random(seed + 1)
    names = list(GATEWAY_TYPES)
    tmpdir = tempfile.mkdtemp(prefix="repro-lint-loop-")
    board = SnapshotBoard.create()
    spec = WorkerSpec(
        shard=0,
        socket_path=os.path.join(tmpdir, "shard-0.sock"),
        log_path=os.path.join(tmpdir, "decisions-0.log"),
        board_name=board.name,
        policy=build_policy_spec())
    worker = threading.Thread(target=worker_main, args=(spec,),
                              name="repro-lint-loop-worker", daemon=True)
    worker.start()
    decisions = 0
    try:
        conn = _connect_with_retry(spec.socket_path)
        stream = conn.makefile("rwb")
        try:
            for round_index in range(_LOOP_ROUNDS):
                types, general = build_publication(round_index, seed)
                board.publish(types, general)
                qtypes = rng.choices(names, k=_LOOP_BATCH)
                frame = ("d 0 " + ",".join(qtypes) + "\n").encode("ascii")
                stream.write(frame)
                stream.flush()
                line = stream.readline()
                if not line.startswith(b"r "):
                    raise RuntimeError(
                        f"monitored worker returned a bad frame: {line!r}")
                decisions += len(line.rsplit(b" ", 1)[1].rstrip(b"\n"))
            stream.write(b"x\n")
            stream.flush()
            stream.readline()
        finally:
            stream.close()
            conn.close()
    finally:
        worker.join(timeout=10.0)
        board.unlink()
        shutil.rmtree(tmpdir, ignore_errors=True)
    return decisions


def run_seqlock_race(seed: int = 11, reads: int = _RACE_READS,
                     publishes: int = _RACE_PUBLISHES,
                     buggy_writer: bool = False) -> SeqlockRaceReport:
    """Race a publisher against a reader on one snapshot board.

    Every publication stamps *all* its snapshots with one epoch, so a
    coherent view is uniform in epoch; a view mixing epochs is a torn
    read.  With ``buggy_writer=True`` one slot is rewritten *without*
    the generation bumps after a normal publish — the seeded bug the
    harness must detect (and the reason the seqlock protocol exists).
    """
    from ..core.histogram import LatencyHistogram
    from ..gateway.snapshot import (GENERAL_SLOT, _NAME_LEN, _SLOTS_OFF,
                                    SnapshotBoard)

    rng = random.Random(seed)
    type_names = ("alpha", "beta", "gamma", "delta")

    def publication(epoch: int) -> Tuple[Dict[str, object], object]:
        types = {}
        for name in type_names:
            hist = LatencyHistogram()
            for _ in range(8):
                hist.record(0.001 + rng.random() * 0.05)
            types[name] = hist.snapshot(epoch=epoch)
        general = LatencyHistogram()
        general.record(0.001 + rng.random() * 0.05)
        return types, general.snapshot(epoch=epoch)

    # Pre-built in this thread: the workload stays a pure function of the
    # seed even though publication order interleaves with reads.
    publications = [publication(epoch) for epoch in range(1, publishes + 1)]

    board = SnapshotBoard.create(slots=len(type_names) + 1)
    observed = 0
    torn = 0
    epochs_seen = set()
    try:
        if buggy_writer:
            types, general = publications[0]
            board.publish(types, general)  # type: ignore[arg-type]
            # The seeded bug: rewrite slot 0 with a different epoch,
            # skipping the odd/even generation bumps entirely.
            rogue_types, _ = publications[-1]
            rogue_name = next(iter(rogue_types))
            name_bytes = rogue_name.encode("utf-8")
            payload = rogue_types[rogue_name].to_bytes()  # type: ignore[attr-defined]
            buf = board._shm.buf
            # repro: allow=seqlock-discipline (this IS the seeded bug the harness must detect)
            _NAME_LEN.pack_into(buf, _SLOTS_OFF, len(name_bytes))
            start = _SLOTS_OFF + _NAME_LEN.size
            buf[start:start + len(name_bytes)] = name_bytes
            start += len(name_bytes)
            # repro: allow=seqlock-discipline (deliberately unprotected write; see above)
            buf[start:start + len(payload)] = payload
        stop = threading.Event()

        def publisher() -> None:
            for types, general in publications[1 if buggy_writer else 0:]:
                if stop.is_set():
                    break
                board.publish(types, general)  # type: ignore[arg-type]

        writer = threading.Thread(target=publisher, daemon=True,
                                  name="repro-seqlock-writer")
        if not buggy_writer:
            writer.start()
        try:
            for _ in range(reads):
                view = board.read()
                if view is None:
                    continue
                observed += 1
                epochs = {snapshot.epoch
                          for snapshot in view.types.values()}
                if view.general is not None:
                    epochs.add(view.general.epoch)
                if len(epochs) > 1:
                    torn += 1
                epochs_seen.update(epochs)
        finally:
            stop.set()
            if writer.is_alive():
                writer.join(timeout=10.0)
    finally:
        board.unlink()
    return SeqlockRaceReport(reads=observed, torn=torn,
                             generations=len(epochs_seen))


def render_dynamic_report(registry: LockCheckRegistry) -> str:
    """Text summary of one lock registry: coverage plus any violations."""
    violations: List[LockOrderViolation] = registry.violations
    lines = [f"dynamic lockcheck: {registry.edge_count()} lock-order "
             f"edge(s) observed, {len(violations)} violation(s)"]
    for violation in violations:
        lines.append(violation.format())
    return "\n".join(lines)


def render_check_report(result: DynamicCheckResult) -> str:
    """Text summary for the CLI: one line per instrument, then failures."""
    race = result.race
    lines = [render_dynamic_report(result.registry),
             f"dynamic loopwatch: {len(result.stalls)} stall(s) over "
             f"{result.loop_budget * 1e3:.0f} ms budget "
             f"({result.loop_decisions if result.loop_decisions is not None else 0} "
             f"decisions on the monitored loop)"]
    if race is not None:
        lines.append(f"seqlock race: {race.reads} coherent read(s), "
                     f"{race.generations} generation(s) observed, "
                     f"{race.torn} torn")
    if result.gateway_decisions is not None:
        lines.append(f"gateway fleet: {result.gateway_decisions} "
                     f"decision(s) across 2 shards")
    for problem in result.problems():
        if problem not in {v.format() for v in result.registry.violations}:
            lines.append(problem)
    return "\n".join(lines)
