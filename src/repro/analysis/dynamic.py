"""The ``repro lint --dynamic`` workload: a short sim + runtime run under
lock-order instrumentation.

Static rules cannot see runtime acquisition order, so the dynamic check
drives the two serving frameworks the way the differential tests do — the
same policy on the discrete-event simulator and on the threaded runtime —
with every repro lock instrumented.  Any lock-order cycle the workload
exposes is reported with both acquisition stacks.
"""

from __future__ import annotations

import random
from typing import List

from ..core.types import Query
from .lockcheck import LockCheckRegistry, LockOrderViolation, install, uninstall

#: Queries driven through each framework; small enough to finish in a
#: couple of seconds, large enough to exercise every metric-point lock.
_SIM_QUERIES = 2_000
_RUNTIME_QUERIES = 300


def run_dynamic_check(seed: int = 11) -> LockCheckRegistry:
    """Run the instrumented differential workload; returns the registry.

    The caller inspects ``registry.violations`` (and ``edge_count()`` for
    the coverage line the CLI prints).
    """
    registry = install()
    try:
        _sim_workload(seed)
        _runtime_workload(seed)
    finally:
        uninstall()
    return registry


def _sim_workload(seed: int) -> None:
    from ..bench import make_bouncer, simulation_mix
    from ..sim import run_simulation

    mix = simulation_mix()
    run_simulation(mix, make_bouncer(),
                   rate_qps=1.2 * mix.full_load_qps(50),
                   num_queries=_SIM_QUERIES, parallelism=50, seed=seed)


def _runtime_workload(seed: int) -> None:
    from ..bench import make_bouncer, simulation_mix
    from ..faults import (FaultInjector, FaultKind, FaultPlan, FaultSpec,
                          RetryConfig, RetryPolicy)
    from ..runtime import AdmissionServer, LoadGenerator
    from ..telemetry import DecisionTracer, Telemetry

    mix = simulation_mix()
    names = list(mix.type_names)

    def factory(rng: random.Random) -> Query:
        return Query(qtype=rng.choice(names))

    telemetry = Telemetry(tracer=DecisionTracer(sample_rate=0.25))
    # A mild probabilistic drop window keeps the injector's RLock ->
    # telemetry-registry nesting (the deepest lock chain in the tree) on
    # the exercised path.
    plan = FaultPlan(name="lockcheck-probe", seed=seed, specs=(
        FaultSpec(kind=FaultKind.QUEUE_DROP, start=0.0, probability=0.05),))
    server = AdmissionServer(make_bouncer(), handler=lambda query: None,
                             workers=4, telemetry=telemetry,
                             fault_injector=FaultInjector(plan, telemetry))
    server.start()
    try:
        retry = RetryPolicy(RetryConfig(max_retries=1, base_delay=0.001,
                                        max_delay=0.002), seed=seed)
        generator = LoadGenerator(server, factory, rate_qps=3_000.0,
                                  seed=seed, retry=retry, deadline=0.25)
        generator.run(_RUNTIME_QUERIES, result_timeout=10.0)
    finally:
        server.stop()


def render_dynamic_report(registry: LockCheckRegistry) -> str:
    """Text summary for the CLI: coverage line plus any violations."""
    violations: List[LockOrderViolation] = registry.violations
    lines = [f"dynamic lockcheck: {registry.edge_count()} lock-order "
             f"edge(s) observed, {len(violations)} violation(s)"]
    for violation in violations:
        lines.append(violation.format())
    return "\n".join(lines)
