"""AST lint framework behind ``repro lint``.

Generic linters cannot know that ``time.monotonic()`` is forbidden outside
:mod:`repro.core.clock`, or that comparing a simulated instant with ``==``
is a reproducibility bug.  This module provides the small framework those
project-specific checks plug into:

* a **rule registry** — a rule is an :class:`ast.NodeVisitor` subclass
  decorated with :func:`register_rule`; adding one is a ~30-line drop-in
  (see :mod:`repro.analysis.rules` for the built-ins);
* **per-rule configuration** — :class:`LintConfig` carries rule selection,
  per-rule path allowlists, and global excludes;
* **suppressions** — a ``# repro: allow=<rule>[,<rule>...]`` comment on the
  violating line (or the line directly above it) silences those rules for
  that line; ``allow=all`` silences everything;
* **text and JSON output** — :func:`render_text` / :func:`render_json`.

The framework is dependency-free (stdlib :mod:`ast` only) so it runs in CI
and pre-commit without installing anything.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path, PurePath
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple, Type)

#: Rule-name character set accepted in suppression comments.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow=([A-Za-z0-9_\-, ]+)")

#: Paths never linted (deliberate-violation fixtures used by the tests).
DEFAULT_EXCLUDE: Tuple[str, ...] = ("*/analysis_fixtures/*",)

#: Per-rule path allowlists applied when :attr:`LintConfig.allow_paths`
#: does not override them.  ``core/clock.py`` is the one module allowed to
#: read the wall clock — it *implements* the injected ``Clock``.
DEFAULT_ALLOW_PATHS: Mapping[str, Tuple[str, ...]] = {
    # clock.py is the sanctioned wall-clock boundary; the perf harness
    # legitimately measures wall time (that is its whole job).
    "no-wall-clock": ("*/repro/core/clock.py", "*/repro/bench/perf.py",
                      "*/repro/bench/sim_perf.py"),
    # Tests open handles to assert on intermediate open-span state.
    "span-must-finish": ("*/tests/*",),
}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: rule: message`` (the text output line)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass
class LintConfig:
    """Configuration for one lint run.

    Parameters
    ----------
    select:
        Rule names to run; ``None`` runs every registered rule.
    allow_paths:
        Per-rule glob patterns (matched against ``/``-normalized paths);
        a file matching a rule's pattern is exempt from that rule.
        Merged over :data:`DEFAULT_ALLOW_PATHS` (assignment wins).
    exclude:
        Glob patterns for paths skipped entirely (fixtures with deliberate
        violations, generated code).
    """

    select: Optional[Set[str]] = None
    allow_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE

    def rule_allows(self, rule_name: str, path: str) -> bool:
        """True when ``path`` is allowlisted for ``rule_name``."""
        patterns = self.allow_paths.get(rule_name)
        if patterns is None:
            patterns = DEFAULT_ALLOW_PATHS.get(rule_name, ())
        return _matches_any(path, patterns)

    def excluded(self, path: str) -> bool:
        return _matches_any(path, self.exclude)


def _matches_any(path: str, patterns: Iterable[str]) -> bool:
    posix = PurePath(path).as_posix()
    return any(fnmatch(posix, pattern) or fnmatch("/" + posix, pattern)
               for pattern in patterns)


class LintRule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set :attr:`name` and :attr:`description`, implement
    ``visit_*`` methods, and call :meth:`report` when they find a
    violation.  One instance is created per file, so per-file state
    (e.g. a stack of enclosing ``with`` blocks) lives on ``self``.
    """

    #: Rule identifier used in output, ``select`` and suppressions.
    name: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""

    def __init__(self, path: str, config: LintConfig) -> None:
        self.path = path
        self.config = config
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a violation at ``node``'s location."""
        self.violations.append(Violation(
            rule=self.name, path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message))


#: The global rule registry, keyed by rule name.
_RULES: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a :class:`LintRule` subclass to the registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _RULES[cls.name] = cls
    return cls


def available_rules() -> Dict[str, str]:
    """Registered rule names mapped to their one-line descriptions."""
    return {name: _RULES[name].description for name in sorted(_RULES)}


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule names suppressed on them."""
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            names = {part.strip() for part in match.group(1).split(",")}
            table[lineno] = {name for name in names if name}
    return table


def _suppressed(violation: Violation,
                table: Mapping[int, Set[str]]) -> bool:
    for lineno in (violation.line, violation.line - 1):
        names = table.get(lineno)
        if names and (violation.rule in names or "all" in names):
            return True
    return False


def lint_source(source: str, path: str,
                config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one file's source text; returns violations sorted by location.

    Syntax errors are reported as a pseudo-violation under the rule name
    ``syntax-error`` rather than raised, so one broken file cannot hide the
    findings in the rest of a run.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(rule="syntax-error", path=path,
                          line=exc.lineno or 0, col=(exc.offset or 0),
                          message=str(exc.msg))]
    table = _suppressions(source)
    found: List[Violation] = []
    for name, rule_cls in sorted(_RULES.items()):
        if config.select is not None and name not in config.select:
            continue
        if config.rule_allows(name, path):
            continue
        rule = rule_cls(path, config)
        rule.visit(tree)
        found.extend(v for v in rule.violations
                     if not _suppressed(v, table))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def iter_python_files(paths: Sequence[str],
                      config: Optional[LintConfig] = None) -> Iterator[str]:
    """Expand files/directories into the ``.py`` files a run covers.

    ``exclude`` patterns apply to directory walks only — a file named
    explicitly is always linted (so ``repro lint path/to/file.py`` does
    what it says; callers like pre-commit exclude fixture paths
    themselves).
    """
    config = config or LintConfig()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                path = str(candidate)
                if not config.excluded(path):
                    yield path
        else:
            yield str(root)


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None
               ) -> Tuple[List[Violation], int]:
    """Lint files and directories; returns ``(violations, files_checked)``.

    Unreadable files surface as ``io-error`` pseudo-violations, mirroring
    the ``syntax-error`` convention.
    """
    config = config or LintConfig()
    violations: List[Violation] = []
    checked = 0
    for path in iter_python_files(paths, config):
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(Violation(
                rule="io-error", path=path, line=0, col=0,
                message=str(exc)))
            continue
        checked += 1
        violations.extend(lint_source(source, path, config))
    return violations, checked


# -- baselines -------------------------------------------------------------
#
# A baseline freezes the current findings so a path expansion (new
# directories, new rules) can land without a flag-day cleanup: recorded
# findings stop failing the run, anything *new* still does.  Keyed by
# (path, rule, message) with multiplicity — line numbers are deliberately
# not part of the key, so unrelated edits that shift a legacy finding a
# few lines do not resurrect it.

#: Format marker inside baseline files.
BASELINE_VERSION = 1


def write_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Record ``violations`` as the accepted baseline at ``path``."""
    findings = sorted(
        ({"path": v.path, "rule": v.rule, "message": v.message}
         for v in violations),
        key=lambda item: (item["path"], item["rule"], item["message"]))
    Path(path).write_text(json.dumps({
        "version": BASELINE_VERSION,
        "findings": findings,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Read a baseline into ``(path, rule, message) -> count``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} has unsupported version {version!r}")
    counts: Dict[Tuple[str, str, str], int] = {}
    for item in payload.get("findings", []):
        key = (str(item["path"]), str(item["rule"]), str(item["message"]))
        counts[key] = counts.get(key, 0) + 1
    return counts


def filter_baseline(violations: Sequence[Violation],
                    baseline: Mapping[Tuple[str, str, str], int]
                    ) -> List[Violation]:
    """Violations not covered by the baseline (multiplicity-aware).

    Each baseline entry absorbs at most its recorded count, so a file
    *gaining* a second identical finding still fails.
    """
    budget = dict(baseline)
    fresh: List[Violation] = []
    for violation in violations:
        key = (violation.path, violation.rule, violation.message)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            fresh.append(violation)
    return fresh


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [violation.format() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun} in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable key order, one JSON document)."""
    return json.dumps({
        "files_checked": files_checked,
        "violations": [violation.as_dict() for violation in violations],
    }, indent=2, sort_keys=True)
