"""Event-loop stall detection: time every callback, fail on budget blows.

The gateway's latency story assumes the asyncio loop always turns in
microseconds — one synchronous ``time.sleep``, file read or long pure-
python section inside a coroutine stalls *every* connection multiplexed
on that loop, and from the outside the symptom is indistinguishable from
an overloaded backend (the admission tier then rejects for latency it
caused itself).  The static ``async-no-blocking`` rule catches the
lexical shapes; :class:`LoopWatch` catches the rest at runtime by
timestamping every callback the loop runs.

Mechanism: ``asyncio`` executes *everything* — task steps, ``call_soon``
callbacks, reader/writer callbacks — through ``Handle._run``.  ``install``
wraps that single choke point with a timer; any callback whose duration
exceeds the budget is recorded as a :class:`StallEvent` with the callback's
name and the measured duration.  ``check()`` raises if anything stalled,
mirroring :meth:`LockCheckRegistry.check`.

Durations are read through an injected :class:`~repro.core.clock.Clock`
(default :class:`~repro.core.clock.MonotonicClock`), so tests drive the
detector deterministically with a :class:`~repro.core.clock.ManualClock`
instead of racing real sleeps against margins.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

import asyncio.events

from ..core.clock import Clock, MonotonicClock

#: Default per-callback budget, in seconds.  Generous against scheduler
#: noise in CI, still two orders of magnitude above a healthy gateway
#: callback (worker decide bursts run in tens of microseconds).
DEFAULT_BUDGET = 0.100

# Captured before install() can patch it; uninstall restores this.
_REAL_HANDLE_RUN = asyncio.events.Handle._run


def _describe_callback(handle: "asyncio.events.Handle") -> str:
    """Best human-readable name for whatever the handle runs."""
    callback = getattr(handle, "_callback", None)
    if callback is None:  # pragma: no cover - defensive
        return repr(handle)
    # Task steps arrive as the bound method TaskStepMethWrapper/Task.__step;
    # the task repr names the wrapped coroutine, which is what the reader
    # actually wants to see in a stall report.
    owner = getattr(callback, "__self__", None)
    if owner is not None and isinstance(owner, asyncio.Task):
        return repr(owner)
    return getattr(callback, "__qualname__", repr(callback))


@dataclass(frozen=True)
class StallEvent:
    """One callback that ran longer than the budget."""

    callback: str
    duration: float
    budget: float

    def format(self) -> str:
        return (f"event-loop stall: {self.callback} ran "
                f"{self.duration * 1e3:.1f} ms "
                f"(budget {self.budget * 1e3:.1f} ms)")


class LoopWatch:
    """Patches ``Handle._run`` to time callbacks against a budget.

    One instance may be installed at a time (the patch is a module-global
    choke point).  Thread-safe: callbacks from any loop on any thread
    report into the same event list, guarded by a real mutex.
    """

    def __init__(self, budget: float = DEFAULT_BUDGET,
                 clock: Optional[Clock] = None) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be > 0, got {budget}")
        self.budget = budget
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._mutex = threading.Lock()
        self._stalls: List[StallEvent] = []
        self._installed = False

    # -- recording -------------------------------------------------------
    @property
    def stalls(self) -> List[StallEvent]:
        with self._mutex:
            return list(self._stalls)

    def _record(self, handle: "asyncio.events.Handle",
                duration: float) -> None:
        event = StallEvent(callback=_describe_callback(handle),
                           duration=duration, budget=self.budget)
        with self._mutex:
            self._stalls.append(event)

    # -- lifecycle -------------------------------------------------------
    def install(self) -> "LoopWatch":
        """Patch the loop's callback runner; idempotent per instance."""
        global _active_watch
        if self._installed:
            return self
        if _active_watch is not None:
            raise RuntimeError("another LoopWatch is already installed")
        watch = self

        def _timed_run(handle: "asyncio.events.Handle") -> None:
            started = watch._clock.now()
            try:
                _REAL_HANDLE_RUN(handle)
            finally:
                elapsed = watch._clock.now() - started
                if elapsed > watch.budget:
                    watch._record(handle, elapsed)

        asyncio.events.Handle._run = _timed_run  # type: ignore[method-assign, assignment]
        _active_watch = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        global _active_watch
        if not self._installed:
            return
        asyncio.events.Handle._run = _REAL_HANDLE_RUN  # type: ignore[method-assign]
        _active_watch = None
        self._installed = False

    # -- reporting -------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`AssertionError` listing every recorded stall."""
        stalls = self.stalls
        if stalls:
            reports = "\n".join(s.format() for s in stalls)
            raise AssertionError(
                f"{len(stalls)} event-loop stall(s) detected by "
                f"repro.analysis.loopwatch:\n{reports}")

    def reset(self) -> None:
        with self._mutex:
            self._stalls.clear()


_active_watch: Optional[LoopWatch] = None


def current_watch() -> Optional[LoopWatch]:
    """The installed :class:`LoopWatch`, or ``None``."""
    return _active_watch


@contextmanager
def monitored_loop(budget: float = DEFAULT_BUDGET,
                   clock: Optional[Clock] = None) -> Iterator[LoopWatch]:
    """Context manager: install a watch, uninstall on exit.

    Does *not* call :meth:`LoopWatch.check` implicitly — callers decide
    whether a stall fails the run or just feeds a report.
    """
    watch = LoopWatch(budget=budget, clock=clock)
    watch.install()
    try:
        yield watch
    finally:
        watch.uninstall()
