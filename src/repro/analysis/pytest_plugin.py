"""Pytest plugin running the test suite under lock-order checking.

Loaded from the repository's top-level ``tests/conftest.py`` via
``pytest_plugins``; activates only when ``REPRO_LOCKCHECK`` is set in the
environment (CI sets it on the chaos/differential jobs), so plain local
runs pay zero overhead.

While active, every ``threading.Lock``/``RLock`` constructed by repro code
is a :class:`~repro.analysis.lockcheck.CheckedLock` feeding the global lock
graph.  At session teardown the guard fixture fails the run if any
lock-order cycle (potential deadlock) was recorded, printing the stacks of
each conflicting acquisition.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

import pytest

from . import lockcheck

_ENV_FLAG = "REPRO_LOCKCHECK"


def _enabled() -> bool:
    return bool(os.environ.get(_ENV_FLAG))


def pytest_configure(config: pytest.Config) -> None:
    if _enabled():
        registry = lockcheck.install()
        config.stash[_registry_key] = registry


def pytest_unconfigure(config: pytest.Config) -> None:
    if config.stash.get(_registry_key, None) is not None:
        lockcheck.uninstall()
        del config.stash[_registry_key]


def pytest_report_header(config: pytest.Config) -> Optional[str]:
    if config.stash.get(_registry_key, None) is not None:
        return "repro.analysis.lockcheck: instrumenting threading locks"
    return None


_registry_key: "pytest.StashKey[lockcheck.LockCheckRegistry]" = (
    pytest.StashKey())


@pytest.fixture(scope="session", autouse=True)
def _repro_lockcheck_guard(request: pytest.FixtureRequest) -> Iterator[None]:
    """Fail the session if the instrumented run recorded any lock cycle."""
    registry = request.config.stash.get(_registry_key, None)
    yield
    if registry is not None:
        registry.check()
