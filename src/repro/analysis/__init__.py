"""Correctness tooling for the reproduction: project-aware static analysis
plus a dynamic lock-order checker.

The three serving frameworks (the discrete-event simulator, the cluster
model, and the threaded runtime) rest on invariants no generic tool checks:

* simulated code must never read wall clocks or unseeded RNG — the
  differential tests depend on byte-for-byte reproducibility;
* simulated instants must never be compared with raw float equality (the
  PR 2 ``stalled_until`` rounding bug froze the event loop exactly this
  way);
* the ``threading.Lock`` instances spread across ``core``, ``telemetry``
  and ``runtime`` must be acquired via ``with`` and in a consistent global
  order.

:mod:`repro.analysis.linter` is an AST lint framework whose project-specific
rules (:mod:`repro.analysis.rules`) enforce the static half;
:mod:`repro.analysis.lockcheck` instruments ``threading.Lock`` at runtime
and fails on lock-order cycles (potential deadlocks).  ``repro lint`` is the
CLI front end; see ``docs/static_analysis.md``.
"""

from .linter import (LintConfig, LintRule, Violation, available_rules,
                     lint_paths, lint_source, register_rule, render_json,
                     render_text)
from .lockcheck import (CheckedLock, CheckedRLock, LockCheckRegistry,
                        LockOrderViolation, current_registry, install,
                        uninstall)
from . import rules as _rules  # noqa: F401  (imports register the rules)

__all__ = [
    "CheckedLock",
    "CheckedRLock",
    "LintConfig",
    "LintRule",
    "LockCheckRegistry",
    "LockOrderViolation",
    "Violation",
    "available_rules",
    "current_registry",
    "install",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "uninstall",
]
