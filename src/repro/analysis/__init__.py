"""Correctness tooling for the reproduction: project-aware static analysis
plus a dynamic lock-order checker.

The three serving frameworks (the discrete-event simulator, the cluster
model, and the threaded runtime) rest on invariants no generic tool checks:

* simulated code must never read wall clocks or unseeded RNG — the
  differential tests depend on byte-for-byte reproducibility;
* simulated instants must never be compared with raw float equality (the
  PR 2 ``stalled_until`` rounding bug froze the event loop exactly this
  way);
* the ``threading.Lock`` instances spread across ``core``, ``telemetry``
  and ``runtime`` must be acquired via ``with`` and in a consistent global
  order.

The async/multi-process era (PR 8's gateway) added three substrates with
invariants of their own — asyncio loops that must never block, forked
worker processes whose payloads must be picklable and handle-free, and a
shared-memory seqlock whose even-odd protocol is the only thing standing
between readers and torn snapshots.  The ``async-no-blocking``,
``no-orphan-task``, ``fork-safety``, ``shm-lifecycle`` and
``seqlock-discipline`` rules enforce those statically;
:mod:`repro.analysis.loopwatch` times every event-loop callback against a
stall budget, and :mod:`repro.analysis.lockcheck` instruments
``threading`` *and* ``asyncio`` locks into one lock-order graph.

:mod:`repro.analysis.linter` is an AST lint framework whose project-specific
rules (:mod:`repro.analysis.rules`) enforce the static half;
``repro lint`` is the CLI front end; see ``docs/static_analysis.md``.
"""

from .linter import (LintConfig, LintRule, Violation, available_rules,
                     filter_baseline, lint_paths, lint_source, load_baseline,
                     register_rule, render_json, render_text, write_baseline)
from .lockcheck import (CheckedAsyncCondition, CheckedAsyncLock, CheckedLock,
                        CheckedRLock, LockCheckRegistry, LockOrderViolation,
                        current_registry, install, uninstall)
from .loopwatch import (DEFAULT_BUDGET, LoopWatch, StallEvent, current_watch,
                        monitored_loop)
from . import rules as _rules  # noqa: F401  (imports register the rules)

__all__ = [
    "CheckedAsyncCondition",
    "CheckedAsyncLock",
    "CheckedLock",
    "CheckedRLock",
    "DEFAULT_BUDGET",
    "LintConfig",
    "LintRule",
    "LockCheckRegistry",
    "LockOrderViolation",
    "LoopWatch",
    "StallEvent",
    "Violation",
    "available_rules",
    "current_registry",
    "current_watch",
    "filter_baseline",
    "install",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "monitored_loop",
    "register_rule",
    "render_json",
    "render_text",
    "uninstall",
    "write_baseline",
]
