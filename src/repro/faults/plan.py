"""Fault plans: the declarative schema of a chaos experiment.

The paper evaluates admission control under *overload* but assumes healthy
engines; production systems also see shards that stall, replicas that die,
and processing times that spike (the degraded regimes of the self-*
overload-control and bufferbloat literatures).  A :class:`FaultPlan` is a
seeded, serializable description of such a regime: a set of
:class:`FaultSpec` activation windows, each naming a fault *kind*, a target
host pattern, an optional query-type scope, and a magnitude.

Determinism is the design center.  A plan's *static schedule*
(:meth:`FaultPlan.windows`) is a pure function of the plan, and the
*realized* injections a :class:`~repro.faults.injector.FaultInjector`
performs are a pure function of ``(plan.seed, the sequence of offered
queries)`` — the same seed against the same workload reproduces the exact
same injections, byte for byte, which is what lets chaos runs live in CI.

All window times are **relative to the injector's arming instant** (the
hosts arm at measurement start), in seconds.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

#: Window duration meaning "until the end of the run".
FOREVER = float("inf")


class FaultKind(enum.Enum):
    """What a fault does to the component it targets."""

    #: Add ``magnitude`` seconds to each affected service time (a network
    #: or GC latency spike).
    LATENCY_SPIKE = "latency_spike"
    #: Multiply affected service times by ``magnitude`` (CPU contention,
    #: degraded storage — the bufferbloat regime).
    SLOWDOWN = "slowdown"
    #: Freeze the target's engine processes for the window: no new
    #: dispatches start until the window closes (a stop-the-world stall).
    ENGINE_STALL = "engine_stall"
    #: The target crashes for the window: arrivals are refused *and* its
    #: engines stall (blackout + stall combined).
    CRASH = "crash"
    #: The target is unreachable for the window: every arrival is refused
    #: with a fault verdict (a dead replica / partitioned shard).
    BLACKOUT = "blackout"
    #: Drop each matching arrival with probability ``probability`` (lossy
    #: admission path, overflowing NIC queues).
    QUEUE_DROP = "queue_drop"
    #: The engine errors the query after doing the work, with probability
    #: ``probability`` (poisoned data, flaky downstream dependency).
    ERROR = "error"


#: Kinds that veto a query at arrival (before the admission policy runs).
ADMISSION_KINDS = (FaultKind.BLACKOUT, FaultKind.CRASH, FaultKind.QUEUE_DROP)
#: Kinds that freeze the target's engines for their window.
STALL_KINDS = (FaultKind.ENGINE_STALL, FaultKind.CRASH)
#: Kinds that reshape an individual service time.
SERVICE_KINDS = (FaultKind.SLOWDOWN, FaultKind.LATENCY_SPIKE)


@dataclass(frozen=True)
class FaultSpec:
    """One fault activation window.

    Parameters
    ----------
    kind:
        What happens (see :class:`FaultKind`).
    start, duration:
        Activation window, in seconds relative to the injector's arming
        instant.  ``duration`` may be :data:`FOREVER`.
    target:
        Host selector, matched with :func:`fnmatch.fnmatchcase` against
        host labels (``"sim"``, ``"runtime"``, ``"broker-0"``,
        ``"shard-*"``, ``"*"``).
    qtypes:
        Query types the fault applies to; empty means all types.
    magnitude:
        Kind-specific intensity: seconds for LATENCY_SPIKE, a multiplier
        for SLOWDOWN; ignored by the window/verdict kinds.
    probability:
        Per-query activation probability for QUEUE_DROP / ERROR (and an
        optional thinning factor for LATENCY_SPIKE).  Draws come from the
        plan-seeded per-spec RNG, in arrival order, so they are
        reproducible.
    """

    kind: FaultKind
    start: float = 0.0
    duration: float = FOREVER
    target: str = "*"
    qtypes: Tuple[str, ...] = ()
    magnitude: float = 1.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(
                f"fault window start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"fault window duration must be > 0, got {self.duration}")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability}")
        if self.kind is FaultKind.SLOWDOWN and self.magnitude < 1.0:
            raise ConfigurationError(
                f"a slowdown multiplier must be >= 1, got {self.magnitude}")
        if self.kind is FaultKind.LATENCY_SPIKE and self.magnitude <= 0:
            raise ConfigurationError(
                f"a latency spike needs a positive magnitude, "
                f"got {self.magnitude}")
        object.__setattr__(self, "qtypes", tuple(self.qtypes))

    @property
    def end(self) -> float:
        """Window close instant (relative seconds; may be ``inf``)."""
        return self.start + self.duration

    def active_at(self, rel_now: float) -> bool:
        """True when the window covers ``rel_now`` (relative seconds)."""
        return self.start <= rel_now < self.end

    def matches(self, host: str, qtype: Optional[str]) -> bool:
        """True when this spec applies to ``host`` / ``qtype``."""
        if not fnmatchcase(host, self.target):
            return False
        return not self.qtypes or qtype is None or qtype in self.qtypes


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault windows — one chaos experiment.

    The ``seed`` drives every probabilistic draw the plan's injector makes;
    two injectors built from equal plans realize identical injections when
    offered the same query sequence.
    """

    name: str
    seed: int
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a fault plan needs a name")
        object.__setattr__(self, "specs", tuple(self.specs))

    def windows(self) -> List[Dict[str, object]]:
        """The static injection schedule: one dict per spec, sorted.

        A pure function of the plan (no RNG involved), used by tests to
        assert that equal plans produce byte-identical schedules.
        """
        rows = [{
            "kind": spec.kind.value,
            "target": spec.target,
            "qtypes": list(spec.qtypes),
            "start": spec.start,
            "end": spec.end,
            "magnitude": spec.magnitude,
            "probability": spec.probability,
        } for spec in self.specs]
        rows.sort(key=lambda r: (r["start"], r["kind"], r["target"]))
        return rows

    def to_json(self) -> str:
        """Canonical JSON form of the plan (schedule + identity)."""
        return json.dumps({"name": self.name, "seed": self.seed,
                           "windows": self.windows()}, sort_keys=True)

    def describe(self) -> str:
        """Human-readable one-line-per-window summary."""
        lines = [f"fault plan {self.name!r} (seed {self.seed}):"]
        for win in self.windows():
            scope = ",".join(win["qtypes"]) or "all types"
            end = ("end-of-run" if win["end"] == FOREVER
                   else f"{win['end']:.3f}s")
            lines.append(
                f"  {win['kind']:<14} target={win['target']:<10} "
                f"[{win['start']:.3f}s .. {end}]  "
                f"magnitude={win['magnitude']:g} "
                f"p={win['probability']:g}  ({scope})")
        return "\n".join(lines)


# -- named plan library ------------------------------------------------------

def _shard_stall(seed: int) -> FaultPlan:
    """Shard 0 stalls for 300ms, then blacks out for 150ms (crash-restart).

    The stall exercises hedging (sub-queries parked on the frozen shard are
    hedged to healthy ones); the blackout exercises rejection-driven
    retries and degraded fan-out responses.
    """
    return FaultPlan("shard-stall", seed, (
        FaultSpec(FaultKind.ENGINE_STALL, start=0.10, duration=0.30,
                  target="shard-0"),
        FaultSpec(FaultKind.BLACKOUT, start=0.40, duration=0.15,
                  target="shard-0"),
    ))


def _shard_blackout(seed: int) -> FaultPlan:
    """Shard 1 refuses everything for 250ms (a dead replica)."""
    return FaultPlan("shard-blackout", seed, (
        FaultSpec(FaultKind.BLACKOUT, start=0.15, duration=0.25,
                  target="shard-1"),
    ))


def _latency_spike(seed: int) -> FaultPlan:
    """A 5ms service-time spike hits 30% of work everywhere for 300ms."""
    return FaultPlan("latency-spike", seed, (
        FaultSpec(FaultKind.LATENCY_SPIKE, start=0.10, duration=0.30,
                  target="*", magnitude=0.005, probability=0.30),
    ))


def _broker_slowdown(seed: int) -> FaultPlan:
    """Broker 0's merge work runs 3x slower for 300ms (hot neighbor)."""
    return FaultPlan("broker-slowdown", seed, (
        FaultSpec(FaultKind.SLOWDOWN, start=0.10, duration=0.30,
                  target="broker-0", magnitude=3.0),
    ))


def _queue_drop(seed: int) -> FaultPlan:
    """20% of arrivals are dropped at every host for 300ms."""
    return FaultPlan("queue-drop", seed, (
        FaultSpec(FaultKind.QUEUE_DROP, start=0.10, duration=0.30,
                  target="*", probability=0.20),
    ))


#: Named plan factories, keyed by the ``repro chaos --plan`` argument.
NAMED_PLANS = {
    "shard-stall": _shard_stall,
    "shard-blackout": _shard_blackout,
    "latency-spike": _latency_spike,
    "broker-slowdown": _broker_slowdown,
    "queue-drop": _queue_drop,
}


def named_plan(name: str, seed: int = 7) -> FaultPlan:
    """Build one of the library plans (:data:`NAMED_PLANS`) by name."""
    try:
        factory = NAMED_PLANS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; known plans: "
            f"{', '.join(sorted(NAMED_PLANS))}") from None
    return factory(seed)
