"""The runtime half of fault injection: plan -> realized injections.

A :class:`FaultInjector` is handed to one or more hosts (the simulated
server, the threaded runtime server, the cluster model's brokers and
shards).  Hosts consult it at three points:

* **arrival** — :meth:`admission_override` may veto a query before the
  admission policy even runs (blackout / crash / queue drop);
* **dispatch** — :meth:`stalled_until` tells a host its engines are frozen,
  and :meth:`shape_service` / :meth:`should_error` reshape or poison the
  service an engine is about to perform;
* **accounting** — every realized injection lands in :attr:`log` (for
  tests) and in the telemetry registry's ``faults_injected_total`` counter
  (for operators).

Determinism: probabilistic draws come from one RNG *per spec*, seeded from
``(plan.seed, spec index)`` and advanced only when a matching query is
offered while the spec is active — so the realized schedule is a pure
function of the plan and the offered query sequence, independent of which
host asks first.  All methods are thread-safe (the runtime server calls
them from worker threads).
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # telemetry imports core only; avoid an import cycle here
    from ..telemetry import Telemetry

from ..core.clock import at_or_after
from ..core.types import AdmissionResult, Query, RejectReason
from .plan import (ADMISSION_KINDS, SERVICE_KINDS, STALL_KINDS, FaultKind,
                   FaultPlan, FaultSpec)

#: One realized injection: (kind, host, qtype, relative time, spec index).
InjectionRecord = Tuple[str, str, str, float, int]


def _spec_seed(plan_seed: int, index: int) -> int:
    """Mix the plan seed with a spec index into an independent stream seed."""
    return (plan_seed * 1_000_003 + index * 7919 + 0x9E3779B9) & 0xFFFFFFFF


class FaultInjector:
    """Realizes a :class:`~repro.faults.plan.FaultPlan` against live hosts.

    Parameters
    ----------
    plan:
        The fault plan to realize.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; every realized
        injection increments ``faults_injected_total`` under the injecting
        host's label.
    epoch:
        Arming instant on the hosts' clock; window times in the plan are
        relative to it.  ``None`` (the default) leaves the injector
        dormant until :meth:`arm` is called — drivers arm at measurement
        start so plan windows align with the measured phase.
    """

    def __init__(self, plan: FaultPlan,
                 telemetry: Optional["Telemetry"] = None,
                 epoch: Optional[float] = None) -> None:
        self.plan = plan
        self._telemetry = telemetry
        self._scoped: Dict[str, "Telemetry"] = {}
        self._epoch = epoch
        self._lock = threading.RLock()
        self._rngs = [random.Random(_spec_seed(plan.seed, idx))
                      for idx in range(len(plan.specs))]
        #: Realized injections, in injection order.
        self.log: List[InjectionRecord] = []
        #: Realized injection counts by fault kind value.
        self.counts: Dict[str, int] = {}

    # -- arming ----------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._epoch is not None

    @property
    def epoch(self) -> Optional[float]:
        return self._epoch

    def arm(self, now: float) -> None:
        """Set the window origin to ``now`` (first call wins; idempotent)."""
        with self._lock:
            if self._epoch is None:
                self._epoch = float(now)

    def _rel(self, now: float) -> Optional[float]:
        epoch = self._epoch
        if epoch is None:
            return None
        return now - epoch

    # -- bookkeeping -----------------------------------------------------
    def _record(self, spec: FaultSpec, index: int, host: str,
                qtype: str, rel_now: float) -> None:
        kind = spec.kind.value
        self.log.append((kind, host, qtype, round(rel_now, 9), index))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._telemetry is not None:
            scoped = self._scoped.get(host)
            if scoped is None:
                scoped = self._telemetry.scoped(host)
                self._scoped[host] = scoped
            scoped.on_fault_injected(kind, qtype)

    def total_injected(self) -> int:
        """Number of realized injections so far."""
        with self._lock:
            return len(self.log)

    def log_json(self) -> str:
        """Canonical JSON of the realized injection log (for byte-equality
        assertions across runs)."""
        import json
        with self._lock:
            return json.dumps(self.log)

    def _active(self, rel_now: float, host: str, qtype: Optional[str],
                kinds: Tuple[FaultKind, ...]
                ) -> Iterator[Tuple[int, FaultSpec]]:
        for index, spec in enumerate(self.plan.specs):
            if (spec.kind in kinds and spec.active_at(rel_now)
                    and spec.matches(host, qtype)):
                yield index, spec

    def _hits(self, index: int, spec: FaultSpec) -> bool:
        """Draw the spec's per-query activation (deterministic stream)."""
        if spec.probability >= 1.0:
            return True
        return self._rngs[index].random() < spec.probability

    # -- host-facing hooks -----------------------------------------------
    def admission_override(self, query: Query, now: float,
                           host: str) -> Optional[AdmissionResult]:
        """A fault verdict for an arriving query, or ``None``.

        Blackout / crash windows refuse everything; queue-drop windows
        refuse probabilistically.  The returned result carries
        :attr:`~repro.core.types.RejectReason.FAULT_INJECTED` so traces and
        reports attribute the rejection to the fault, not the policy.
        """
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return None
            for index, spec in self._active(rel_now, host, query.qtype,
                                            ADMISSION_KINDS):
                if self._hits(index, spec):
                    self._record(spec, index, host, query.qtype, rel_now)
                    return AdmissionResult.reject(
                        RejectReason.FAULT_INJECTED)
        return None

    def shape_service(self, base: float, query: Query, now: float,
                      host: str) -> float:
        """Service time after active slowdowns/spikes (``base`` if none)."""
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return base
            shaped = base
            for index, spec in self._active(rel_now, host, query.qtype,
                                            SERVICE_KINDS):
                if not self._hits(index, spec):
                    continue
                if spec.kind is FaultKind.SLOWDOWN:
                    shaped *= spec.magnitude
                else:
                    shaped += spec.magnitude
                self._record(spec, index, host, query.qtype, rel_now)
            return shaped

    def should_error(self, query: Query, now: float, host: str) -> bool:
        """True when an active ERROR fault poisons this query's execution."""
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return False
            for index, spec in self._active(rel_now, host, query.qtype,
                                            (FaultKind.ERROR,)):
                if self._hits(index, spec):
                    self._record(spec, index, host, query.qtype, rel_now)
                    return True
        return False

    def stalled_until(self, now: float, host: str) -> Optional[float]:
        """Absolute instant the target's engines unfreeze, or ``None``.

        Does not log — a stall is realized when a host actually defers
        work, which the host reports through :meth:`note_stall` (once per
        deferral, keeping the realized log free of polling noise).
        """
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return None
            end: Optional[float] = None
            for _, spec in self._active(rel_now, host, None, STALL_KINDS):
                spec_end = spec.end
                if end is None or spec_end > end:
                    end = spec_end
            if end is None:
                return None
            epoch: float = self._epoch  # type: ignore[assignment]
            # ``(epoch + end) - epoch`` can round to a hair *below*
            # ``end``, leaving the spec active at the very instant we
            # told the host to wake up — a host that re-polls at the
            # returned time would re-schedule itself forever at frozen
            # simulated time.
            return at_or_after(epoch, end)

    def note_stall(self, now: float, host: str) -> None:
        """Record that ``host`` deferred dispatch due to an active stall."""
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return
            for index, spec in self._active(rel_now, host, None,
                                            STALL_KINDS):
                self._record(spec, index, host, "", rel_now)
                return

    def is_blacked_out(self, now: float, host: str) -> bool:
        """True when a blackout/crash window currently covers ``host``."""
        with self._lock:
            rel_now = self._rel(now)
            if rel_now is None:
                return False
            return any(True for _, spec in self._active(
                rel_now, host, None,
                (FaultKind.BLACKOUT, FaultKind.CRASH)))
