"""Client-side resilience: capped exponential backoff with jitter.

The fault-injection subsystem makes components misbehave; this module is
the client half that keeps the system's promises anyway.  A
:class:`RetryPolicy` turns a retry ordinal into a delay (or a refusal):

* delays grow geometrically from ``base_delay`` by ``multiplier``, capped
  at ``max_delay`` — the classic capped exponential backoff;
* full-jitter-style noise of ``+/- jitter`` (a fraction of the raw delay)
  desynchronizes retrying clients, drawn from a seeded RNG so test runs
  are reproducible;
* the policy is **deadline-aware**: a retry whose backoff would land past
  the query's SLO deadline is refused outright — retrying a query that
  cannot possibly answer in time only adds load to a system that is
  already hurting;
* budget exhaustion is signalled by returning ``None``, never by raising —
  callers surface it as a *rejection* (the paper's early-rejection
  contract) rather than an exception blast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryConfig:
    """Shape of a capped exponential backoff schedule.

    ``max_retries`` counts retries, not attempts: 3 means one initial try
    plus up to three more.  ``jitter`` is the symmetric noise fraction —
    0.2 means each delay is drawn uniformly from ``[0.8d, 1.2d]``.
    """

    max_retries: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.100
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay <= 0:
            raise ConfigurationError(
                f"base_delay must be > 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")


class RetryPolicy:
    """Seeded, deadline-aware backoff delays for one client.

    Not shared between threads without external locking (each client owns
    one, like it owns its RNG).
    """

    def __init__(self, config: Optional[RetryConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.config = config if config is not None else RetryConfig()
        self._rng = random.Random(seed)

    def raw_delay(self, retry: int) -> Optional[float]:
        """Unjittered delay before retry number ``retry`` (0-based), or
        ``None`` once the retry budget is spent."""
        cfg = self.config
        if retry < 0 or retry >= cfg.max_retries:
            return None
        return min(cfg.base_delay * cfg.multiplier ** retry, cfg.max_delay)

    def schedule(self) -> List[float]:
        """The full unjittered backoff schedule (for docs and tests)."""
        return [self.raw_delay(i)  # type: ignore[misc]
                for i in range(self.config.max_retries)]

    def backoff(self, retry: int, now: Optional[float] = None,
                deadline: Optional[float] = None) -> Optional[float]:
        """Jittered delay before retry ``retry``, or ``None`` to give up.

        ``None`` means either the budget is exhausted or — when ``now``
        and ``deadline`` are given — the delay alone would push the next
        attempt past the deadline (the early abort: never retry a query
        beyond its SLO deadline).
        """
        raw = self.raw_delay(retry)
        if raw is None:
            return None
        jitter = self.config.jitter
        delay = raw if jitter == 0.0 else (
            raw * (1.0 + jitter * (2.0 * self._rng.random() - 1.0)))
        if (deadline is not None and now is not None
                and now + delay >= deadline):
            return None
        return delay
