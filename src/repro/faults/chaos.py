"""Chaos harness: one fault plan vs. one policy, SLO attainment compared.

:func:`run_chaos` runs the broker/shard cluster model twice from identical
seeds — once fault-free, once with the given :class:`~repro.faults.FaultPlan`
injected and broker-side resilience (retries, hedging, timeouts, graceful
degradation) enabled — and reports per-type SLO attainment side by side.
The interesting question a chaos run answers is *blast radius*: a fault
pinned to one shard should cost the query types that depend on that shard,
and nothing else.

The ``repro chaos`` CLI command (see :mod:`repro.cli`) is a thin wrapper
over this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..liquid.cluster_sim import (ClusterConfig, ClusterReport,
                                  PolicyFactory, ResilienceConfig,
                                  run_cluster_simulation)
from .injector import FaultInjector
from .plan import FaultPlan

#: Default SLO threshold for attainment: the paper's p90 objective (50ms).
DEFAULT_ATTAINMENT_THRESHOLD = 0.050


@dataclass
class ChaosResult:
    """Paired fault-free / faulted cluster runs over the same workload."""

    plan: FaultPlan
    baseline: ClusterReport
    faulted: ClusterReport
    threshold: float
    injector: FaultInjector

    def attainment_delta(self) -> Dict[str, float]:
        """Attainment loss per type in points (positive = worse under
        faults), pooled under ``"ALL"``."""
        out = {}
        for qtype, base in self.baseline.attainment.items():
            faulted = self.faulted.attainment.get(qtype, 0.0)
            out[qtype] = 100.0 * (base - faulted)
        return out


def run_chaos(plan: FaultPlan, policy_factory: PolicyFactory,
              config: Optional[ClusterConfig] = None,
              rate_qps: float = 9000.0, num_queries: int = 18_000,
              warmup_queries: int = 2000, seed: int = 5,
              resilience: Optional[ResilienceConfig] = None,
              threshold: float = DEFAULT_ATTAINMENT_THRESHOLD
              ) -> ChaosResult:
    """Run ``plan`` against ``policy_factory`` on the cluster model.

    Both runs share the workload seed, so the arrival sequences are
    identical and any attainment difference is attributable to the plan
    (plus the resilience machinery absorbing it).  ``resilience`` defaults
    to :class:`~repro.liquid.ResilienceConfig`'s stock knobs; pass
    ``None``-disabling explicitly via a config with huge timeouts if a
    no-resilience run is wanted.
    """
    if resilience is None:
        resilience = ResilienceConfig()
    baseline = run_cluster_simulation(
        config if config is not None else _default_config(seed),
        policy_factory, rate_qps=rate_qps, num_queries=num_queries,
        warmup_queries=warmup_queries, seed=seed,
        attainment_threshold=threshold)
    injector = FaultInjector(plan)
    faulted = run_cluster_simulation(
        config if config is not None else _default_config(seed),
        policy_factory, rate_qps=rate_qps, num_queries=num_queries,
        warmup_queries=warmup_queries, seed=seed,
        fault_injector=injector, resilience=resilience,
        attainment_threshold=threshold)
    return ChaosResult(plan=plan, baseline=baseline, faulted=faulted,
                       threshold=threshold, injector=injector)


def render_chaos_table(result: ChaosResult) -> str:
    """The chaos report: per-type attainment side by side, then counters."""
    from ..bench import format_table

    deltas = result.attainment_delta()
    rows: List[List[str]] = []
    for qtype in sorted(result.baseline.attainment,
                        key=_type_sort_key):
        if qtype == "ALL":
            continue
        rows.append(_chaos_row(result, qtype, deltas))
    rows.append(_chaos_row(result, "ALL", deltas))
    table = format_table(
        ["type", "slo base", "slo chaos", "delta (pts)", "rej chaos"],
        rows,
        title=(f"chaos: plan '{result.plan.name}' (seed {result.plan.seed})"
               f" vs {result.faulted.policy_name}, SLO "
               f"{result.threshold * 1000:.0f}ms"))
    counters = (f"faults_injected={result.faulted.faults_injected}  "
                f"retries={result.faulted.retries}  "
                f"hedges={result.faulted.hedges}  "
                f"degraded_responses={result.faulted.degraded}")
    kinds = ", ".join(f"{kind}={count}" for kind, count
                      in sorted(result.injector.counts.items()))
    return "\n".join([table, "", result.plan.describe(), "",
                      counters, f"injections by kind: {kinds or 'none'}"])


def _chaos_row(result: ChaosResult, qtype: str,
               deltas: Dict[str, float]) -> List[str]:
    stats = (result.faulted.overall if qtype == "ALL"
             else result.faulted.stats_for(qtype))
    return [
        qtype,
        f"{result.baseline.attainment.get(qtype, 0.0):.1%}",
        f"{result.faulted.attainment.get(qtype, 0.0):.1%}",
        f"{deltas.get(qtype, 0.0):+.1f}",
        f"{stats.rejection_pct:.2f}%",
    ]


def _type_sort_key(name: str) -> Tuple[int, int, str]:
    # QT2 before QT10; non-QT names sort lexically after.
    if name.startswith("QT") and name[2:].isdigit():
        return (0, int(name[2:]), name)
    return (1, 0, name)


def _default_config(seed: int) -> ClusterConfig:
    from ..bench import cluster_config

    return cluster_config(seed=seed)
