"""Seeded, deterministic fault injection and the resilience it demands.

The paper studies admission control under overload with healthy engines;
this package models the *unhealthy* regimes a production deployment must
survive — stalled shards, dead replicas, latency spikes, lossy queues —
and the client/broker-side machinery (timeouts, retries with backoff,
hedging, graceful degradation) that keeps SLOs attainable through them.

* :mod:`~repro.faults.plan` — the :class:`FaultPlan` schema and the named
  plan library behind ``repro chaos --plan``.
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the runtime that
  hosts consult; all three serving frameworks accept one.
* :mod:`~repro.faults.retry` — :class:`RetryPolicy`, capped exponential
  backoff with jitter and deadline-aware early abort.
* :mod:`~repro.faults.chaos` — the ``repro chaos`` runner: a named plan
  against a policy, reported as SLO attainment under faults.
"""

from .injector import FaultInjector, InjectionRecord
from .plan import (ADMISSION_KINDS, FOREVER, NAMED_PLANS, SERVICE_KINDS,
                   STALL_KINDS, FaultKind, FaultPlan, FaultSpec, named_plan)
from .retry import RetryConfig, RetryPolicy

__all__ = [
    "ADMISSION_KINDS",
    "FOREVER",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectionRecord",
    "NAMED_PLANS",
    "RetryConfig",
    "RetryPolicy",
    "SERVICE_KINDS",
    "STALL_KINDS",
    "named_plan",
]
