"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate configuration problems from runtime ones.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A policy, workload, or system component was configured incorrectly.

    Raised eagerly at construction time (never mid-run) so that a bad
    deployment fails fast instead of silently misbehaving under load.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class QueryRejectedError(ReproError):
    """A query submitted to a real runtime server was rejected.

    Carries the :class:`~repro.core.types.AdmissionResult` that explains the
    rejection, mirroring the error response a LIquid broker would return.
    """

    def __init__(self, result: Any) -> None:
        super().__init__(f"query rejected: {result}")
        self.result = result


class ShuttingDownError(ReproError):
    """A query was submitted to a runtime server that is shutting down."""


class InjectedFaultError(ReproError):
    """A query's execution was poisoned by an injected fault.

    Raised into the caller's future by the runtime server (and modelled as
    an errored completion by the simulated hosts) when an active
    :class:`~repro.faults.plan.FaultKind.ERROR` fault fires.  It is a
    *terminal verdict*: the query is accounted, never silently lost.
    """


class DeadlineExceededError(ReproError):
    """An admitted query expired before (or while) being processed.

    Mirrors LIquid's behaviour: "brokers and shards also enforce expiration
    times for admitted queries" (§5.1) — an expired query is dropped at
    dequeue instead of wasting engine time on a response nobody will read.
    """
