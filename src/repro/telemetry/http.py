"""Stdlib HTTP exposition: ``/metrics``, ``/traces``, and ``/spans``.

A scrape endpoint for a live host, with no web-framework dependency: a
:class:`~http.server.ThreadingHTTPServer` on a daemon thread, serving

* ``GET /metrics`` — exposition text (Prometheus text format 0.0.4); for
  an :class:`~repro.runtime.server.AdmissionServer` this is a superset of
  :func:`repro.obs.render_metrics`.
* ``GET /traces`` — recent decision-trace events as JSONL; ``?limit=N``
  caps the response to the newest N events and ``?qtype=T`` restricts it
  to one query type (filters compose: newest N *of type T*).
* ``GET /spans`` — recent lifecycle spans; the same ``?limit=``/``?qtype=``
  filters, plus ``?format=chrome`` for the Chrome trace-event form that
  Perfetto and ``chrome://tracing`` load directly (default ``jsonl``).
* ``GET /healthz`` — liveness probe.

The server binds ``port=0`` (ephemeral) by default so tests and multi-host
local runs never collide; read the bound port from :attr:`port`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qs, urlparse

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
TRACES_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"
CHROME_TRACE_CONTENT_TYPE = "application/json; charset=utf-8"

MetricsFn = Callable[[], str]
#: (limit, qtype) -> JSONL body.
TracesFn = Callable[[Optional[int], Optional[str]], str]
#: (limit, qtype, format) -> body ("jsonl" or "chrome").
SpansFn = Callable[[Optional[int], Optional[str], str], str]


class _Handler(BaseHTTPRequestHandler):
    """Routes scrape requests to the owning server's callbacks."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        if parsed.path == "/metrics":
            self._reply(200, METRICS_CONTENT_TYPE,
                        self.server.metrics_fn())
        elif parsed.path == "/traces":
            traces_fn = self.server.traces_fn
            if traces_fn is None:
                self._reply(404, "text/plain; charset=utf-8",
                            "tracing is not enabled on this host\n")
                return
            filters = self._filters(query)
            if filters is None:
                return
            limit, qtype = filters
            self._reply(200, TRACES_CONTENT_TYPE, traces_fn(limit, qtype))
        elif parsed.path == "/spans":
            spans_fn = self.server.spans_fn
            if spans_fn is None:
                self._reply(404, "text/plain; charset=utf-8",
                            "span tracing is not enabled on this host\n")
                return
            filters = self._filters(query)
            if filters is None:
                return
            limit, qtype = filters
            fmt = query.get("format", ["jsonl"])[0]
            if fmt not in ("jsonl", "chrome"):
                self._reply(400, "text/plain; charset=utf-8",
                            f"bad format: {fmt!r} "
                            "(expected jsonl or chrome)\n")
                return
            ctype = (CHROME_TRACE_CONTENT_TYPE if fmt == "chrome"
                     else TRACES_CONTENT_TYPE)
            self._reply(200, ctype, spans_fn(limit, qtype, fmt))
        elif parsed.path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", "ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        "try /metrics, /traces, /spans, or /healthz\n")

    def _filters(self, query: dict
                 ) -> Optional[Tuple[Optional[int], Optional[str]]]:
        """Parse the shared ``?limit=``/``?qtype=`` filters.

        Returns ``None`` after replying 400 on a malformed limit."""
        limit = None
        raw = query.get("limit")
        if raw:
            try:
                limit = max(0, int(raw[0]))
            except ValueError:
                self._reply(400, "text/plain; charset=utf-8",
                            f"bad limit: {raw[0]!r}\n")
                return None
        qtype_raw = query.get("qtype")
        qtype = qtype_raw[0] if qtype_raw else None
        return limit, qtype

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request access logging (scrapes are periodic)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], metrics_fn: MetricsFn,
                 traces_fn: Optional[TracesFn],
                 spans_fn: Optional[SpansFn]) -> None:
        super().__init__(address, _Handler)
        self.metrics_fn = metrics_fn
        self.traces_fn = traces_fn
        self.spans_fn = spans_fn


class TelemetryHTTPServer:
    """Owns the exposition thread for one host.

    Usage::

        exposition = TelemetryHTTPServer(metrics_fn=server.render_metrics)
        exposition.start()
        print(f"scrape me at {exposition.url}/metrics")
        ...
        exposition.stop()
    """

    def __init__(self, metrics_fn: MetricsFn,
                 traces_fn: Optional[TracesFn] = None,
                 spans_fn: Optional[SpansFn] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._metrics_fn = metrics_fn
        self._traces_fn = traces_fn
        self._spans_fn = spans_fn
        self._host = host
        self._requested_port = port
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is None:
            raise RuntimeError("exposition server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "TelemetryHTTPServer":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        self._httpd = _Server((self._host, self._requested_port),
                              self._metrics_fn, self._traces_fn,
                              self._spans_fn)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry-http-{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
