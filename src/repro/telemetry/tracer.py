"""Per-query decision traces at the paper's Figure-1 metric points.

A :class:`TraceEvent` is one structured record of a query crossing a metric
point:

* **Point 1** (``decision``) — the admission verdict at arrival, with the
  policy's evidence: Bouncer's mean-wait estimate (Eq. 2), its percentile
  response-time estimates (Eqs. 3–4), the SLO targets they were compared
  against, and whether the cold-start fallback was in effect.
* **Point 2** (``dequeue``) — an engine process picked the query up; the
  measured queue wait.
* **Point 3** (``completion``) — the response is ready; measured
  processing and response times.  Deadline drops surface as ``expired``.

:class:`DecisionTracer` keeps events in a bounded ring buffer (oldest
evicted first) with a deterministic per-query sampling decision, so points
2 and 3 of a sampled query are always captured together with its point 1
and the hot path stays cheap at low sampling rates.  Export is JSONL — one
event per line — consumed by ``repro trace-report`` and the ``/traces``
endpoint.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..exceptions import ConfigurationError

#: Default ring-buffer capacity (events, not queries).
DEFAULT_CAPACITY = 16384

#: Knuth's multiplicative hash constant; spreads sequential query ids
#: uniformly over 32 bits for the sampling decision.
_HASH_MULTIPLIER = 2654435761
_HASH_SPACE = 2 ** 32


@dataclass
class TraceEvent:
    """One metric-point crossing of one query.

    ``None`` fields are omitted from the JSONL form; a decision event
    carries the estimate fields, a completion event the measured times.
    """

    event: str             # decision|dequeue|completion|expired|cancelled
    point: int                    # 1, 2, or 3 (Figure 1)
    ts: float                     # host-clock seconds
    query_id: int
    qtype: str
    host: Optional[str] = None
    accepted: Optional[bool] = None
    reason: Optional[str] = None
    overridden: Optional[bool] = None
    queue_length: Optional[int] = None
    ewt_mean: Optional[float] = None
    ert: Dict[str, float] = field(default_factory=dict)
    slo: Dict[str, float] = field(default_factory=dict)
    cold_start: Optional[bool] = None
    wait_time: Optional[float] = None
    processing_time: Optional[float] = None
    response_time: Optional[float] = None
    #: Cumulative estimator fast-path counters at decision time
    #: (``estimator_cache_hits``/``misses``, ``eq2_recomputes``).
    fast_path: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Compact dict form: ``None`` and empty-mapping fields omitted."""
        out: dict = {"event": self.event, "point": self.point,
                     "ts": self.ts, "query_id": self.query_id,
                     "qtype": self.qtype}
        for name in ("host", "accepted", "reason", "overridden",
                     "queue_length", "ewt_mean", "cold_start",
                     "wait_time", "processing_time", "response_time"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.ert:
            out["ert"] = self.ert
        if self.slo:
            out["slo"] = self.slo
        if self.fast_path:
            out["fast_path"] = self.fast_path
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            event=data["event"], point=int(data["point"]),
            ts=float(data["ts"]), query_id=int(data["query_id"]),
            qtype=data["qtype"], host=data.get("host"),
            accepted=data.get("accepted"), reason=data.get("reason"),
            overridden=data.get("overridden"),
            queue_length=data.get("queue_length"),
            ewt_mean=data.get("ewt_mean"),
            ert=dict(data.get("ert", {})), slo=dict(data.get("slo", {})),
            cold_start=data.get("cold_start"),
            wait_time=data.get("wait_time"),
            processing_time=data.get("processing_time"),
            response_time=data.get("response_time"),
            fast_path=dict(data.get("fast_path", {})))


class DecisionTracer:
    """Bounded, sampled recorder of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are evicted when full, and
        ``dropped`` counts evictions so exports can flag truncation.
    sample_rate:
        Fraction of queries traced, in ``[0, 1]``.  The decision is a
        deterministic hash of the query id, so every metric point of a
        sampled query is kept and re-running a seeded simulation samples
        the same queries.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample_rate: float = 1.0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, "
                                     f"got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def sampled(self, query_id: int) -> bool:
        """Deterministic per-query sampling verdict (cheap: one multiply)."""
        if self._threshold >= _HASH_SPACE:
            return True
        if self._threshold <= 0:
            return False
        return (query_id * _HASH_MULTIPLIER) % _HASH_SPACE < self._threshold

    def record(self, event: TraceEvent) -> None:
        """Append one event (evicting the oldest past capacity)."""
        with self._lock:
            self._events.append(event)
            self.recorded += 1

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        with self._lock:
            return max(0, self.recorded - len(self._events))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, limit: Optional[int] = None,
               qtype: Optional[str] = None) -> List[TraceEvent]:
        """Snapshot of retained events, oldest first (newest when limited),
        optionally restricted to one query type."""
        with self._lock:
            snapshot = list(self._events)
        if qtype is not None:
            snapshot = [event for event in snapshot
                        if event.qtype == qtype]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.recorded = 0

    # -- export ----------------------------------------------------------
    def render_jsonl(self, limit: Optional[int] = None,
                     qtype: Optional[str] = None) -> str:
        """Retained events as JSONL text (``/traces`` endpoint body)."""
        lines = [event.to_json() for event in self.events(limit, qtype)]
        if not lines:
            return ""
        return "\n".join(lines) + "\n"

    def export_jsonl(self, path: str,
                     limit: Optional[int] = None) -> int:
        """Write retained events to ``path``; returns the events written."""
        events = self.events(limit)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(events)


def parse_jsonl(text: str) -> List[TraceEvent]:
    """Parse JSONL trace text back into events (blank lines skipped)."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError) as exc:
            raise ConfigurationError(
                f"malformed trace line {lineno}: {exc}") from exc
    return events


def load_jsonl(path: str) -> List[TraceEvent]:
    """Read a JSONL trace file exported by :meth:`export_jsonl`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())
