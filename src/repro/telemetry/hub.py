"""The telemetry facade the serving frameworks call at the metric points.

:class:`Telemetry` bundles a :class:`~repro.telemetry.registry
.MetricsRegistry` and an optional :class:`~repro.telemetry.tracer
.DecisionTracer` behind the four hooks every host fires (decision,
dequeue, completion, expiration) plus the fail-open policy-error counter.
Hosts accept ``telemetry=None`` and skip the calls entirely, so
uninstrumented runs pay a single ``is None`` test per metric point.

One ``Telemetry`` can serve a whole cluster: :meth:`scoped` returns a view
sharing the registry and tracer but stamping a different ``host`` label
(``broker-0``, ``shard-3``, …), which is how the LIquid cluster model
attributes events to hosts.

Bouncer evidence (``ewt_mean``, per-percentile ``ert_p``, the SLO targets,
the cold-start flag) is captured on *sampled* decisions only: the
percentile estimates ride along on the :class:`~repro.core.types
.AdmissionResult` for free, and the wait estimate is recomputed from the
live queue — a cost paid once per sampled query, not per query.
"""

from __future__ import annotations

from typing import Optional

from ..core.bouncer import BouncerPolicy
from ..core.policy import AdmissionPolicy
from ..core.starvation import _StarvationWrapper
from ..core.types import AdmissionResult, Query
from .registry import MetricsRegistry
from .tracer import DecisionTracer, TraceEvent


def _unwrap_bouncer(policy: Optional[AdmissionPolicy]
                    ) -> Optional[BouncerPolicy]:
    if isinstance(policy, _StarvationWrapper):
        policy = policy.inner
    return policy if isinstance(policy, BouncerPolicy) else None


class Telemetry:
    """Registry + optional tracer, stamped with this host's name.

    Parameters
    ----------
    registry:
        Shared metric registry; a fresh one is created when omitted.
    tracer:
        Optional decision tracer.  ``None`` keeps counters/histograms but
        records no per-query events.
    host:
        Label stamped on every metric and event this view records.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[DecisionTracer] = None,
                 host: str = "main") -> None:
        self.registry = registry if registry is not None else (
            MetricsRegistry())
        self.tracer = tracer
        self.host = host
        reg = self.registry
        self._accepted = reg.counter(
            "accepted_total", "Queries admitted, by host and type.")
        self._rejected = reg.counter(
            "rejected_total",
            "Queries rejected, by host, type, and reason.")
        self._expired = reg.counter(
            "expired_total",
            "Admitted queries dropped in the queue past their deadline.")
        self._policy_errors = reg.counter(
            "policy_errors_total",
            "Policy decide()/hook exceptions absorbed by fail-open hosts.")
        self._faults_injected = reg.counter(
            "faults_injected_total",
            "Fault activations realized by the injector, by host and kind.")
        self._retries = reg.counter(
            "retries_total",
            "Retry attempts issued after rejections or timeouts.")
        self._hedges = reg.counter(
            "hedges_total",
            "Hedged duplicate sub-queries issued against slow shards.")
        self._degraded = reg.counter(
            "degraded_responses_total",
            "Responses served from partial (healthy-replica) results.")
        self._queue_wait = reg.histogram(
            "queue_wait_seconds", "Measured FIFO queue wait (Point 2).")
        self._processing = reg.histogram(
            "processing_seconds", "Measured processing time (Point 3).")
        self._response = reg.histogram(
            "response_seconds",
            "Measured response time wt+pt (Point 3, paper Eq. 1).")
        self._ewt_gauge = reg.gauge(
            "bouncer_ewt_seconds",
            "Bouncer's latest mean queue-wait estimate (Eq. 2).")
        self._ert_gauge = reg.gauge(
            "bouncer_ert_seconds",
            "Bouncer's latest percentile response-time estimates "
            "(Eqs. 3-4), by type and quantile.")
        self._cache_hits = reg.counter(
            "estimator_cache_hits",
            "Bouncer fast-path estimator cache hits (epoch-keyed "
            "snapshot-stat memo; see docs/performance.md).")
        self._cache_misses = reg.counter(
            "estimator_cache_misses",
            "Bouncer fast-path estimator cache misses (a snapshot's "
            "derived stats were computed for a new publish epoch).")
        self._eq2_recomputes = reg.counter(
            "eq2_recomputes",
            "Full recomputes of Bouncer's incremental Eq. 2 term table "
            "(publish boundaries, bootstrap publishes, resyncs).")
        # Last-synced FastPathStats per policy, for delta accounting.
        self._fast_seen: dict = {}

    def scoped(self, host: str) -> "Telemetry":
        """A view onto the same registry/tracer under another host label."""
        return Telemetry(registry=self.registry, tracer=self.tracer,
                         host=host)

    # -- convenience readers (the runtime server's counter properties) ----
    @property
    def policy_error_count(self) -> int:
        return int(self._policy_errors.labels(host=self.host).value)

    @property
    def expired_count(self) -> int:
        return int(self._expired.labels(host=self.host).value)

    def faults_injected_total(self) -> int:
        """Realized fault injections across all hosts and kinds."""
        return int(sum(child.value
                       for child in self._faults_injected.children()
                       .values()))

    def retries_total(self) -> int:
        """Retry attempts recorded across all hosts."""
        return int(sum(child.value
                       for child in self._retries.children().values()))

    def hedges_total(self) -> int:
        """Hedged sub-queries recorded across all hosts."""
        return int(sum(child.value
                       for child in self._hedges.children().values()))

    def degraded_total(self) -> int:
        """Degraded (partial-result) responses across all hosts."""
        return int(sum(child.value
                       for child in self._degraded.children().values()))

    def render(self) -> str:
        """Exposition text for the shared registry."""
        return self.registry.render()

    # -- metric-point hooks ------------------------------------------------
    def on_decision(self, query: Query, result: AdmissionResult,
                    now: float, queue_length: int = 0,
                    policy: Optional[AdmissionPolicy] = None) -> None:
        """Point 1: an admission verdict was produced for ``query``."""
        qtype = query.qtype
        if result.accepted:
            self._accepted.labels(host=self.host, qtype=qtype).inc()
        else:
            reason = result.reason.value if result.reason else "unknown"
            self._rejected.labels(host=self.host, qtype=qtype,
                                  reason=reason).inc()
        if result.estimates:
            for percentile, value in result.estimates.items():
                self._ert_gauge.labels(host=self.host, qtype=qtype,
                                       quantile=f"{percentile:g}"
                                       ).set(value)
        if policy is not None:
            self.record_fast_path(policy)
        tracer = self.tracer
        if tracer is None or not tracer.sampled(query.query_id):
            return
        event = TraceEvent(
            event="decision", point=1, ts=now, query_id=query.query_id,
            qtype=qtype, host=self.host, accepted=result.accepted,
            reason=result.reason.value if result.reason else None,
            overridden=result.overridden or None,
            queue_length=queue_length,
            ert={f"{p:g}": v for p, v in result.estimates.items()})
        bouncer = _unwrap_bouncer(policy)
        if bouncer is not None:
            ewt = bouncer.estimate_wait_mean()
            event.ewt_mean = ewt
            self._ewt_gauge.labels(host=self.host).set(ewt)
            snap = bouncer.processing_snapshot(qtype)
            cold = snap.count < bouncer.config.min_samples
            event.cold_start = cold
            slo = (bouncer.slos.default if cold
                   else bouncer.slos.for_type(qtype))
            event.slo = {f"{p:g}": target for p, target in slo.items()}
        tracer.record(event)

    def record_fast_path(self, policy: AdmissionPolicy) -> None:
        """Sync a Bouncer's :class:`~repro.core.bouncer.FastPathStats`
        into the estimator counters (delta-based; safe to call often)."""
        bouncer = _unwrap_bouncer(policy)
        if bouncer is None:
            return
        stats = bouncer.fast_path_stats
        hits = stats.cache_hits
        misses = stats.cache_misses
        recomputes = stats.eq2_recomputes
        seen = self._fast_seen.get(id(bouncer), (0, 0, 0))
        if (hits, misses, recomputes) == seen:
            return
        self._fast_seen[id(bouncer)] = (hits, misses, recomputes)
        if hits > seen[0]:
            self._cache_hits.labels(host=self.host).inc(hits - seen[0])
        if misses > seen[1]:
            self._cache_misses.labels(host=self.host).inc(misses - seen[1])
        if recomputes > seen[2]:
            self._eq2_recomputes.labels(host=self.host).inc(
                recomputes - seen[2])

    def on_dequeue(self, query: Query, now: float) -> None:
        """Point 2: an engine process pulled ``query`` from the queue."""
        wait = query.wait_time or 0.0
        self._queue_wait.labels(host=self.host,
                                qtype=query.qtype).observe(wait)
        tracer = self.tracer
        if tracer is None or not tracer.sampled(query.query_id):
            return
        tracer.record(TraceEvent(
            event="dequeue", point=2, ts=now, query_id=query.query_id,
            qtype=query.qtype, host=self.host, wait_time=wait))

    def on_completion(self, query: Query, now: float) -> None:
        """Point 3: ``query`` finished; its response is about to ship."""
        qtype = query.qtype
        processing = query.processing_time or 0.0
        response = query.response_time or 0.0
        self._processing.labels(host=self.host,
                                qtype=qtype).observe(processing)
        self._response.labels(host=self.host,
                              qtype=qtype).observe(response)
        tracer = self.tracer
        if tracer is None or not tracer.sampled(query.query_id):
            return
        tracer.record(TraceEvent(
            event="completion", point=3, ts=now,
            query_id=query.query_id, qtype=qtype, host=self.host,
            wait_time=query.wait_time, processing_time=processing,
            response_time=response))

    def on_expired(self, query: Query, now: float) -> None:
        """An admitted query was dropped in the queue past its deadline."""
        self._expired.labels(host=self.host).inc()
        tracer = self.tracer
        if tracer is None or not tracer.sampled(query.query_id):
            return
        tracer.record(TraceEvent(
            event="expired", point=3, ts=now, query_id=query.query_id,
            qtype=query.qtype, host=self.host,
            wait_time=query.wait_time))

    def on_policy_error(self) -> None:
        """The host absorbed a policy exception (fail-open admission)."""
        self._policy_errors.labels(host=self.host).inc()

    # -- chaos hooks (fault injection and the resilience it triggers) ------
    def on_fault_injected(self, kind: str, qtype: str = "") -> None:
        """The fault injector realized one injection on this host."""
        self._faults_injected.labels(host=self.host, kind=kind).inc()

    def on_retry(self) -> None:
        """A client/broker retried after a rejection or timeout."""
        self._retries.labels(host=self.host).inc()

    def on_hedge(self) -> None:
        """A broker hedged a slow sub-query to another shard."""
        self._hedges.labels(host=self.host).inc()

    def on_degraded(self) -> None:
        """A response shipped with partial (healthy-replica) results."""
        self._degraded.labels(host=self.host).inc()
