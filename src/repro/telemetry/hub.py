"""The telemetry facade the serving frameworks call at the metric points.

:class:`Telemetry` bundles a :class:`~repro.telemetry.registry
.MetricsRegistry`, an optional :class:`~repro.telemetry.tracer
.DecisionTracer`, an optional :class:`~repro.telemetry.spans.SpanRecorder`,
and an optional :class:`~repro.telemetry.calibration.CalibrationTracker`
behind the hooks every host fires (decision, dequeue, completion,
expiration) plus the fail-open policy-error counter.  Hosts accept
``telemetry=None`` and skip the calls entirely, so uninstrumented runs pay
a single ``is None`` test per metric point.

One ``Telemetry`` can serve a whole cluster: :meth:`scoped` returns a view
sharing the registry, tracer, span recorder, and calibration tracker but
stamping a different ``host`` label (``broker-0``, ``shard-3``, …), which
is how the LIquid cluster model attributes events to hosts.

Bouncer evidence (``ewt_mean``, per-percentile ``ert_p``, the SLO targets,
the cold-start flag) is captured on *sampled* decisions only: the
percentile estimates ride along on the :class:`~repro.core.types
.AdmissionResult` for free, and the wait estimate is recomputed from the
live queue — a cost paid once per sampled query, not per query.  The span
recorder and calibration tracker use the same deterministic query-id hash,
so a sampled query's point events, spans, and calibration join always
appear together.

Span handles live on ``query.span_ctx`` between hooks; the ``span_*``
helpers here own every open/close transition, so hosts never hold a raw
handle (and the ``span-must-finish`` lint discipline concentrates in one
module).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.bouncer import BouncerPolicy
from ..core.policy import AdmissionPolicy
from ..core.starvation import _StarvationWrapper
from ..core.types import AdmissionResult, Query, RejectReason
from .calibration import CalibrationTracker
from .registry import MetricsRegistry
from .spans import SpanContext, SpanRecorder
from .tracer import DecisionTracer, TraceEvent


def _unwrap_bouncer(policy: Optional[AdmissionPolicy]
                    ) -> Optional[BouncerPolicy]:
    if isinstance(policy, _StarvationWrapper):
        policy = policy.inner
    return policy if isinstance(policy, BouncerPolicy) else None


class TelemetryBatch:
    """Deferred registry updates, flushed through ``add_many``.

    The metric-point hooks accept ``defer=<batch>`` to buffer their
    counter increments and histogram observations here instead of taking
    the child lock per event; :meth:`flush` applies everything in one
    :meth:`~repro.telemetry.registry.MetricsRegistry.add_many` pass.
    Deferral never changes what the registry ends up containing — counter
    sums are commutative and each histogram child receives its values in
    recorded order, so bucket counts *and* the rendered value sums are
    identical to the unbuffered path.  Only scrape freshness changes: a
    render between buffer and flush can run up to the buffer's depth
    behind.  Hosts bound that lag (the simulated server flushes whenever
    its engines all go idle or the buffer tops 512 entries; the runtime
    server flushes at the end of each ``submit_many`` burst).

    Not thread-safe: one batch belongs to one recording thread.  Events
    that must stay per-query and in order (trace events, span
    transitions, calibration joins, gauge sets) are never deferred.
    """

    __slots__ = ("_registry", "_counters", "_histograms", "pending")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        # id(child) -> [child, payload]; identity-keyed so distinct label
        # sets of one family never collide and lookup skips __eq__.
        self._counters: dict = {}
        self._histograms: dict = {}
        #: Buffered updates not yet flushed (hosts use this for thresholds).
        self.pending = 0

    def inc(self, child: Any, amount: float = 1.0) -> None:
        """Buffer a counter/gauge increment."""
        slot = self._counters.get(id(child))
        if slot is None:
            self._counters[id(child)] = [child, amount]
        else:
            slot[1] += amount
        self.pending += 1

    def observe(self, child: Any, value: float) -> None:
        """Buffer one histogram observation (per-child order preserved)."""
        slot = self._histograms.get(id(child))
        if slot is None:
            self._histograms[id(child)] = [child, [value]]
        else:
            slot[1].append(value)
        self.pending += 1

    def flush(self) -> None:
        """Apply all buffered updates to the registry and empty the batch."""
        if not self.pending:
            return
        updates = [(child, payload)
                   for child, payload in self._counters.values()]
        updates.extend((child, values)
                       for child, values in self._histograms.values())
        self._registry.add_many(updates)
        self._counters.clear()
        self._histograms.clear()
        self.pending = 0


class Telemetry:
    """Registry + optional tracer/spans/calibration, stamped with this
    host's name.

    Parameters
    ----------
    registry:
        Shared metric registry; a fresh one is created when omitted.
    tracer:
        Optional decision tracer.  ``None`` keeps counters/histograms but
        records no per-query events.
    host:
        Label stamped on every metric and event this view records.
    spans:
        Optional lifecycle-span recorder.  ``None`` disables span
        emission (hosts pay nothing).
    calibration:
        Optional estimator-calibration tracker joining point-1 estimates
        to point-2/3 measurements.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[DecisionTracer] = None,
                 host: str = "main",
                 spans: Optional[SpanRecorder] = None,
                 calibration: Optional[CalibrationTracker] = None) -> None:
        self.registry = registry if registry is not None else (
            MetricsRegistry())
        self.tracer = tracer
        self.host = host
        self.spans = spans
        self.calibration = calibration
        reg = self.registry
        self._accepted = reg.counter(
            "accepted_total", "Queries admitted, by host and type.")
        self._rejected = reg.counter(
            "rejected_total",
            "Queries rejected, by host, type, and reason.")
        self._expired = reg.counter(
            "expired_total",
            "Admitted queries dropped in the queue past their deadline.")
        self._cancelled = reg.counter(
            "cancelled_total",
            "Admitted queries abandoned at shutdown before any worker "
            "dequeued them (their futures are cancelled).")
        self._policy_errors = reg.counter(
            "policy_errors_total",
            "Policy decide()/hook exceptions absorbed by fail-open hosts.")
        self._faults_injected = reg.counter(
            "faults_injected_total",
            "Fault activations realized by the injector, by host and kind.")
        self._retries = reg.counter(
            "retries_total",
            "Retry attempts issued after rejections or timeouts.")
        self._hedges = reg.counter(
            "hedges_total",
            "Hedged duplicate sub-queries issued against slow shards.")
        self._degraded = reg.counter(
            "degraded_responses_total",
            "Responses served from partial (healthy-replica) results.")
        self._queue_wait = reg.histogram(
            "queue_wait_seconds", "Measured FIFO queue wait (Point 2).")
        self._processing = reg.histogram(
            "processing_seconds", "Measured processing time (Point 3).")
        self._response = reg.histogram(
            "response_seconds",
            "Measured response time wt+pt (Point 3, paper Eq. 1).")
        self._ewt_gauge = reg.gauge(
            "bouncer_ewt_seconds",
            "Bouncer's latest mean queue-wait estimate (Eq. 2).")
        self._ert_gauge = reg.gauge(
            "bouncer_ert_seconds",
            "Bouncer's latest percentile response-time estimates "
            "(Eqs. 3-4), by type and quantile.")
        self._cache_hits = reg.counter(
            "estimator_cache_hits",
            "Bouncer fast-path estimator cache hits (epoch-keyed "
            "snapshot-stat memo; see docs/performance.md).")
        self._cache_misses = reg.counter(
            "estimator_cache_misses",
            "Bouncer fast-path estimator cache misses (a snapshot's "
            "derived stats were computed for a new publish epoch).")
        self._eq2_recomputes = reg.counter(
            "eq2_recomputes",
            "Full recomputes of Bouncer's incremental Eq. 2 term table "
            "(publish boundaries, bootstrap publishes, resyncs).")
        self._calibration_gauge = reg.gauge(
            "estimator_calibration",
            "Estimator calibration stats: rolling mean signed error and "
            "APE per estimator term, and rolling SLO attainment, by type "
            "(synced at render time).")
        # Last-synced FastPathStats per policy, for delta accounting.
        self._fast_seen: dict = {}

    def scoped(self, host: str) -> "Telemetry":
        """A view onto the same registry/tracer/spans/calibration under
        another host label."""
        return Telemetry(registry=self.registry, tracer=self.tracer,
                         host=host, spans=self.spans,
                         calibration=self.calibration)

    def batch(self) -> TelemetryBatch:
        """A new deferred-update buffer bound to this registry (pass it as
        the hooks' ``defer`` argument, flush at a drain boundary)."""
        return TelemetryBatch(self.registry)

    # -- convenience readers (the runtime server's counter properties) ----
    @property
    def policy_error_count(self) -> int:
        return int(self._policy_errors.labels(host=self.host).value)

    @property
    def expired_count(self) -> int:
        return int(self._expired.labels(host=self.host).value)

    @property
    def cancelled_count(self) -> int:
        return int(self._cancelled.labels(host=self.host).value)

    def faults_injected_total(self) -> int:
        """Realized fault injections across all hosts and kinds."""
        return int(sum(child.value
                       for child in self._faults_injected.children()
                       .values()))

    def retries_total(self) -> int:
        """Retry attempts recorded across all hosts."""
        return int(sum(child.value
                       for child in self._retries.children().values()))

    def hedges_total(self) -> int:
        """Hedged sub-queries recorded across all hosts."""
        return int(sum(child.value
                       for child in self._hedges.children().values()))

    def degraded_total(self) -> int:
        """Degraded (partial-result) responses across all hosts."""
        return int(sum(child.value
                       for child in self._degraded.children().values()))

    def render(self) -> str:
        """Exposition text for the shared registry (calibration gauges
        are synced from the tracker first)."""
        calibration = self.calibration
        if calibration is not None:
            for labels, value in calibration.gauge_values():
                self._calibration_gauge.labels(**labels).set(value)
        return self.registry.render()

    # -- metric-point hooks ------------------------------------------------
    def on_decision(self, query: Query, result: AdmissionResult,
                    now: float, queue_length: int = 0,
                    policy: Optional[AdmissionPolicy] = None,
                    defer: Optional[TelemetryBatch] = None) -> None:
        """Point 1: an admission verdict was produced for ``query``.

        ``defer`` buffers the accepted/rejected counter increment in a
        :class:`TelemetryBatch` instead of taking the child lock here;
        everything order-sensitive (gauges, traces, spans, calibration)
        still happens inline.
        """
        qtype = query.qtype
        if result.accepted:
            child = self._accepted.labels(host=self.host, qtype=qtype)
            if defer is None:
                child.inc()
            else:
                defer.inc(child)
        else:
            reason = result.reason.value if result.reason else "unknown"
            child = self._rejected.labels(host=self.host, qtype=qtype,
                                          reason=reason)
            if defer is None:
                child.inc()
            else:
                defer.inc(child)
        if result.estimates:
            for percentile, value in result.estimates.items():
                self._ert_gauge.labels(host=self.host, qtype=qtype,
                                       quantile=f"{percentile:g}"
                                       ).set(value)
        if policy is not None:
            self.record_fast_path(policy)
        tracer = self.tracer
        calibration = self.calibration
        query_id = query.query_id
        trace_this = tracer is not None and tracer.sampled(query_id)
        calibrate_this = (calibration is not None
                          and calibration.sampled(query_id))
        if not trace_this and not calibrate_this:
            self._span_decision(query, result, now)
            return
        # Bouncer evidence, computed once and shared by both sinks.
        ewt_mean: Optional[float] = None
        cold: Optional[bool] = None
        slo_map: dict = {}
        bouncer = _unwrap_bouncer(policy)
        if bouncer is not None:
            ewt_mean = bouncer.estimate_wait_mean()
            self._ewt_gauge.labels(host=self.host).set(ewt_mean)
            snap = bouncer.processing_snapshot(qtype)
            cold = snap.count < bouncer.config.min_samples
            slo = (bouncer.slos.default if cold
                   else bouncer.slos.for_type(qtype))
            slo_map = {f"{p:g}": target for p, target in slo.items()}
        ert_map = {f"{p:g}": v for p, v in result.estimates.items()}
        if trace_this:
            event = TraceEvent(
                event="decision", point=1, ts=now, query_id=query_id,
                qtype=qtype, host=self.host, accepted=result.accepted,
                reason=result.reason.value if result.reason else None,
                overridden=result.overridden or None,
                queue_length=queue_length, ert=ert_map)
            if bouncer is not None:
                event.ewt_mean = ewt_mean
                event.cold_start = cold
                event.slo = slo_map
                stats = bouncer.fast_path_stats
                event.fast_path = {
                    "estimator_cache_hits": stats.cache_hits,
                    "estimator_cache_misses": stats.cache_misses,
                    "eq2_recomputes": stats.eq2_recomputes}
            tracer.record(event)
        if calibrate_this:
            calibration.note_decision(
                query_id, qtype, accepted=result.accepted,
                reason=result.reason.value if result.reason else None,
                ewt_mean=ewt_mean, ert=ert_map, slo=slo_map)
        self._span_decision(query, result, now)

    def record_fast_path(self, policy: AdmissionPolicy) -> None:
        """Sync a Bouncer's :class:`~repro.core.bouncer.FastPathStats`
        into the estimator counters (delta-based; safe to call often)."""
        bouncer = _unwrap_bouncer(policy)
        if bouncer is None:
            return
        stats = bouncer.fast_path_stats
        hits = stats.cache_hits
        misses = stats.cache_misses
        recomputes = stats.eq2_recomputes
        seen = self._fast_seen.get(id(bouncer), (0, 0, 0))
        if (hits, misses, recomputes) == seen:
            return
        self._fast_seen[id(bouncer)] = (hits, misses, recomputes)
        if hits > seen[0]:
            self._cache_hits.labels(host=self.host).inc(hits - seen[0])
        if misses > seen[1]:
            self._cache_misses.labels(host=self.host).inc(misses - seen[1])
        if recomputes > seen[2]:
            self._eq2_recomputes.labels(host=self.host).inc(
                recomputes - seen[2])

    def on_dequeue(self, query: Query, now: float,
                   defer: Optional[TelemetryBatch] = None) -> None:
        """Point 2: an engine process pulled ``query`` from the queue."""
        wait = query.wait_time or 0.0
        wait_child = self._queue_wait.labels(host=self.host,
                                             qtype=query.qtype)
        if defer is None:
            wait_child.observe(wait)
        else:
            defer.observe(wait_child, wait)
        tracer = self.tracer
        if tracer is not None and tracer.sampled(query.query_id):
            tracer.record(TraceEvent(
                event="dequeue", point=2, ts=now, query_id=query.query_id,
                qtype=query.qtype, host=self.host, wait_time=wait))
        calibration = self.calibration
        if calibration is not None:
            calibration.note_dequeue(query.query_id, wait)
        self.span_dequeue(query, now)

    def on_completion(self, query: Query, now: float,
                      errored: bool = False,
                      defer: Optional[TelemetryBatch] = None) -> None:
        """Point 3: ``query`` finished; its response is about to ship."""
        qtype = query.qtype
        processing = query.processing_time or 0.0
        response = query.response_time or 0.0
        processing_child = self._processing.labels(host=self.host,
                                                   qtype=qtype)
        response_child = self._response.labels(host=self.host, qtype=qtype)
        if defer is None:
            processing_child.observe(processing)
            response_child.observe(response)
        else:
            defer.observe(processing_child, processing)
            defer.observe(response_child, response)
        tracer = self.tracer
        if tracer is not None and tracer.sampled(query.query_id):
            tracer.record(TraceEvent(
                event="completion", point=3, ts=now,
                query_id=query.query_id, qtype=qtype, host=self.host,
                wait_time=query.wait_time, processing_time=processing,
                response_time=response))
        calibration = self.calibration
        if calibration is not None:
            calibration.note_completion(query.query_id, response)
        late = query.deadline is not None and now > query.deadline
        self.span_complete(query, now,
                           status=("error" if errored
                                   else "expired" if late else "ok"))

    def on_expired(self, query: Query, now: float) -> None:
        """An admitted query was dropped in the queue past its deadline."""
        self._expired.labels(host=self.host).inc()
        tracer = self.tracer
        if tracer is not None and tracer.sampled(query.query_id):
            tracer.record(TraceEvent(
                event="expired", point=3, ts=now, query_id=query.query_id,
                qtype=query.qtype, host=self.host,
                wait_time=query.wait_time))
        calibration = self.calibration
        if calibration is not None:
            calibration.note_expired(query.query_id, query.qtype)
        self.span_expired(query, now)

    def on_cancelled(self, query: Query, now: float) -> None:
        """An admitted query was abandoned unprocessed at shutdown."""
        self._cancelled.labels(host=self.host).inc()
        tracer = self.tracer
        if tracer is not None and tracer.sampled(query.query_id):
            tracer.record(TraceEvent(
                event="cancelled", point=3, ts=now,
                query_id=query.query_id, qtype=query.qtype,
                host=self.host))
        ctx = query.span_ctx
        if ctx is not None:
            query.span_ctx = None
            self.spans.finish_lifecycle(ctx, now, "cancelled")

    def on_policy_error(self) -> None:
        """The host absorbed a policy exception (fail-open admission)."""
        self._policy_errors.labels(host=self.host).inc()

    # -- span lifecycle helpers --------------------------------------------
    # Hosts never hold raw SpanHandles: every open handle lives on
    # ``query.span_ctx`` between hooks, and each helper below performs a
    # complete open/close (or handoff) transition.

    def _span_decision(self, query: Query, result: AdmissionResult,
                       now: float) -> None:
        """Open (accepted) or record whole (rejected) the root span."""
        spans = self.spans
        if spans is None:
            return
        ctx = query.span_ctx
        if ctx is not None:
            # Adopted span (a shard-side attempt): the parent trace owns
            # the root; this host only adds/closes its own phases.
            if not result.accepted:
                query.span_ctx = None
                reason = result.reason.value if result.reason else "unknown"
                status = ("fault"
                          if result.reason is RejectReason.FAULT_INJECTED
                          else "rejected")
                ctx.root.finish(now, status=status, reason=reason)
                return
            ctx.queue = ctx.root.child_span("queue_wait", now,
                                            host=self.host)
            return
        if not result.accepted:
            reason = result.reason.value if result.reason else "unknown"
            status = ("fault"
                      if result.reason is RejectReason.FAULT_INJECTED
                      else "rejected")
            spans.record_trace(query.query_id, query.qtype, self.host,
                               start=query.arrival_time, end=now,
                               status=status, reason=reason)
            return
        ctx = spans.open_lifecycle(query.query_id, query.qtype, self.host,
                                   query.arrival_time, now)
        if ctx is None:
            return
        if result.overridden:
            ctx.root.annotate(overridden=True)
        query.span_ctx = ctx

    def span_adopt(self, query: Query, handle: Optional[Any]) -> None:
        """Attach an already-open span handle (opened by another host,
        e.g. a broker-side attempt span) as ``query``'s root, so this
        host's queue/execute/close transitions land under it."""
        if self.spans is None or handle is None:
            return
        query.span_ctx = SpanContext(handle,
                                     execute_name="shard_execute")

    def span_annotate(self, query: Query, **attrs: Any) -> None:
        """Attach attributes to the query's root span (no-op unsampled)."""
        ctx = query.span_ctx
        if ctx is not None:
            ctx.root.annotate(**attrs)

    def span_dequeue(self, query: Query, now: float) -> None:
        """Close the queue-wait span and open the execution span."""
        ctx = query.span_ctx
        if ctx is not None:
            self.spans.transition_execute(ctx, now, self.host)

    def span_complete(self, query: Query, now: float,
                      status: str = "ok") -> None:
        """Close every phase span still open, then the root span."""
        ctx = query.span_ctx
        if ctx is not None:
            query.span_ctx = None
            self.spans.finish_lifecycle(ctx, now, status)

    def span_expired(self, query: Query, now: float) -> None:
        """Close all open spans for a query dropped in the queue."""
        ctx = query.span_ctx
        if ctx is not None:
            query.span_ctx = None
            self.spans.finish_lifecycle(ctx, now, "expired")

    def span_mark_fault(self, query: Query, kind: str,
                        now: float) -> None:
        """Attach an instantaneous fault marker to the query's trace."""
        ctx = query.span_ctx
        if ctx is None:
            return
        target = ctx.execute if ctx.execute is not None else ctx.root
        target.marker("fault", now, status="fault", kind=kind)

    # -- chaos hooks (fault injection and the resilience it triggers) ------
    def on_fault_injected(self, kind: str, qtype: str = "") -> None:
        """The fault injector realized one injection on this host."""
        self._faults_injected.labels(host=self.host, kind=kind).inc()

    def on_retry(self) -> None:
        """A client/broker retried after a rejection or timeout."""
        self._retries.labels(host=self.host).inc()

    def on_hedge(self) -> None:
        """A broker hedged a slow sub-query to another shard."""
        self._hedges.labels(host=self.host).inc()

    def on_degraded(self) -> None:
        """A response shipped with partial (healthy-replica) results."""
        self._degraded.labels(host=self.host).inc()
