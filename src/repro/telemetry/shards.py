"""Per-shard gateway metrics aggregation.

The gateway's worker processes keep their own counters (no shared-memory
metrics: counters are written on every decision, and cross-process
synchronization there would tax the hot path).  Instead the parent pulls
counter snapshots over each worker's control socket
(:meth:`repro.gateway.GatewayServer.collect_stats`) and lands them in a
:class:`~repro.telemetry.registry.MetricsRegistry` here — as *gauges*
set to the worker's cumulative values, so repeated collections overwrite
rather than double-count, and one ``render()`` shows the whole fleet.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .registry import MetricsRegistry

#: Gauge names recorded per shard, keyed by the stats field they mirror.
SHARD_GAUGES: Mapping[str, str] = {
    "decisions": "gateway_shard_decisions",
    "accepted": "gateway_shard_accepted",
    "rejected": "gateway_shard_rejected",
    "policy_errors": "gateway_shard_policy_errors",
    "generation": "gateway_shard_generation",
    "snapshot_syncs": "gateway_shard_snapshot_syncs",
}

_HELP: Mapping[str, str] = {
    "gateway_shard_decisions": "Admission decisions made, by shard.",
    "gateway_shard_accepted": "Queries admitted, by shard.",
    "gateway_shard_rejected": "Queries rejected, by shard.",
    "gateway_shard_policy_errors":
        "Policy exceptions absorbed fail-open, by shard.",
    "gateway_shard_generation":
        "Latest snapshot-board generation a shard has applied.",
    "gateway_shard_snapshot_syncs":
        "Snapshot-board publications a shard has applied.",
}


def record_shard_stats(registry: MetricsRegistry,
                       stats_by_shard: Mapping[int, Mapping[str, object]]
                       ) -> None:
    """Set the per-shard gauges from one stats collection."""
    for shard, stats in stats_by_shard.items():
        for stat_key, gauge_name in SHARD_GAUGES.items():
            value = stats.get(stat_key)
            if value is None:
                continue
            registry.gauge(gauge_name, _HELP[gauge_name]).labels(
                shard=str(shard)).set(float(value))  # type: ignore[arg-type]


def aggregate_shard_stats(
        stats_by_shard: Mapping[int, Mapping[str, object]]
        ) -> Dict[str, int]:
    """Fleet-wide totals of the summable per-shard counters."""
    totals = {"decisions": 0, "accepted": 0, "rejected": 0,
              "policy_errors": 0}
    for stats in stats_by_shard.values():
        for key in totals:
            value = stats.get(key)
            if value is not None:
                totals[key] += int(value)  # type: ignore[call-overload]
    return totals
