"""Thread-safe metric families with Prometheus text exposition.

:class:`MetricsRegistry` is the process-wide (or host-scoped) container the
telemetry subsystem records into: counters (monotone), gauges (last value),
and log-bucketed histograms reusing the same exponential bucket geometry as
the policies' latency histograms (:class:`~repro.core.histogram
.BucketLayout`).  There is deliberately no dependency on any metrics
library — ``registry.render()`` emits the de-facto text exposition format
(version 0.0.4) that Prometheus, VictoriaMetrics, and ``curl`` all read.

Hot-path cost: recording into a pre-bound child (``family.labels(...)``
cached by the caller) is one lock acquisition and a float add.  Rendering
walks every child and is meant for the scrape path, not the decision path.

Usage::

    registry = MetricsRegistry()
    accepted = registry.counter("accepted_total", "Admitted queries.")
    accepted.labels(qtype="edge").inc()
    print(registry.render())
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.histogram import BucketLayout
from ..exceptions import ConfigurationError

#: Default metric-name prefix.  Distinct from :mod:`repro.obs`'s
#: ``repro_admission`` prefix so the two renderings can be concatenated into
#: one scrape body without family collisions.
DEFAULT_PREFIX = "repro_telemetry"

#: Default histogram geometry for exposition: coarser than the policies'
#: estimation histograms (4% buckets would emit ~470 ``le`` lines per
#: child), spanning 10µs..100s at ~50% relative growth (~40 buckets).
EXPOSITION_LAYOUT = BucketLayout(min_value=1e-5, max_value=100.0,
                                 growth=1.5)

_LabelKey = Tuple[Tuple[str, str], ...]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash, double-quote, and line-feed must all be escaped; a raw
    newline inside a label value corrupts every line after it.
    """
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and line-feed only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: str = "") -> str:
    inner = ",".join(f'{name}="{escape_label_value(value)}"'
                     for name, value in key)
    if extra:
        inner = f"{inner},{extra}" if inner else extra
    return f"{{{inner}}}" if inner else ""


class _Child:
    """One labelled series inside a family."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Child):
    """A monotonically increasing series."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    """A series holding the last value set."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    """A log-bucketed distribution series (cumulative ``le`` rendering)."""

    __slots__ = ("_layout", "_counts", "_count", "_sum")

    def __init__(self, layout: BucketLayout) -> None:
        super().__init__()
        self._layout = layout
        self._counts = [0] * layout.num_buckets
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        with self._lock:
            self._counts[self._layout.index_for(value)] += 1
            self._count += 1
            self._sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        Equivalent to calling :meth:`observe` per value in order (the sum
        is accumulated with the same left-to-right float additions), but
        amortizes the lock and attribute loads over the batch — the flush
        path of :class:`~repro.telemetry.hub.TelemetryBatch`.
        """
        with self._lock:
            counts = self._counts
            index_for = self._layout.index_for
            total = self._sum
            recorded = 0
            for value in values:
                if value < 0:
                    value = 0.0
                counts[index_for(value)] += 1
                total += value
                recorded += 1
            self._sum = total
            self._count += recorded

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def state(self) -> Tuple[List[int], int, float]:
        """Consistent (bucket counts, count, sum) snapshot for rendering."""
        with self._lock:
            return list(self._counts), self._count, self._sum


class MetricFamily:
    """A named metric plus its labelled children.

    Children are created on first use and cached; callers on a hot path
    should bind ``family.labels(...)`` once and reuse the child.
    """

    def __init__(self, name: str, help_text: str, kind: str,
                 layout: Optional[BucketLayout] = None) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self._layout = layout
        self._children: Dict[_LabelKey, _Child] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> _Child:
        key = _label_key(labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = CounterChild()
                elif self.kind == "gauge":
                    child = GaugeChild()
                else:
                    child = HistogramChild(self._layout
                                           or EXPOSITION_LAYOUT)
                self._children[key] = child
            return child

    def children(self) -> Dict[_LabelKey, _Child]:
        with self._lock:
            return dict(self._children)

    def render_into(self, lines: List[str], prefix: str) -> None:
        full = f"{prefix}_{self.name}" if prefix else self.name
        lines.append(f"# HELP {full} {escape_help(self.help)}")
        lines.append(f"# TYPE {full} {self.kind}")
        for key in sorted(self.children()):
            child = self._children[key]
            if isinstance(child, HistogramChild):
                self._render_histogram(lines, full, key, child)
            else:
                lines.append(f"{full}{_format_labels(key)} "
                             f"{child.value:g}")

    @staticmethod
    def _render_histogram(lines: List[str], full: str, key: _LabelKey,
                          child: HistogramChild) -> None:
        counts, count, total = child.state()
        layout = child._layout
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if bucket_count == 0:
                continue  # sparse rendering: only occupied bucket edges
            le = f'le="{layout.upper_bound(idx):g}"'
            lines.append(f"{full}_bucket{_format_labels(key, le)} "
                         f"{cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{full}_bucket{_format_labels(key, inf)} {count}")
        lines.append(f"{full}_sum{_format_labels(key)} {total:g}")
        lines.append(f"{full}_count{_format_labels(key)} {count}")


class MetricsRegistry:
    """Registry of metric families; get-or-create semantics by name.

    Thread-safe: families may be created and recorded into from any thread
    while another renders.
    """

    def __init__(self, prefix: str = DEFAULT_PREFIX) -> None:
        self.prefix = prefix
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, help_text: str, kind: str,
                       layout: Optional[BucketLayout] = None
                       ) -> MetricFamily:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help_text, kind, layout)
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            return family

    def counter(self, name: str, help_text: str = "") -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, help_text, "counter")

    def gauge(self, name: str, help_text: str = "") -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, help_text, "gauge")

    def histogram(self, name: str, help_text: str = "",
                  layout: Optional[BucketLayout] = None) -> MetricFamily:
        """Get or create a histogram family (default exposition layout)."""
        return self._get_or_create(name, help_text, "histogram", layout)

    def families(self) -> Iterable[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def add_many(self, updates: Iterable[Tuple[_Child, object]]) -> None:
        """Apply a batch of child updates in one pass.

        ``updates`` is an iterable of ``(child, payload)`` pairs where
        ``child`` is a bound child (``family.labels(...)``) and ``payload``
        is a float increment for counters/gauges or an iterable of values
        for histograms.  Each child is touched once (one lock acquisition
        per entry), so hosts that buffer hot-path increments — see
        :class:`~repro.telemetry.hub.TelemetryBatch` — flush hundreds of
        observations at the cost of a few locked sections.
        """
        for child, payload in updates:
            if isinstance(child, HistogramChild):
                child.observe_many(payload)  # type: ignore[arg-type]
            elif isinstance(child, (CounterChild, GaugeChild)):
                child.inc(float(payload))  # type: ignore[arg-type]
            else:
                raise ConfigurationError(
                    f"add_many cannot apply updates to {type(child).__name__}")

    def counter_value(self, name: str, **labels: str) -> float:
        """Read one counter child's value (0.0 when never incremented)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0.0
        return family.labels(**labels).value

    def render(self) -> str:
        """Render every family as exposition text (stable ordering)."""
        lines: List[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            family.render_into(lines, self.prefix)
        if not lines:
            return ""
        return "\n".join(lines) + "\n"
