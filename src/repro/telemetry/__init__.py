"""End-to-end telemetry: metric registry, decision traces, spans, exposition.

The measurement substrate behind the reproduction's serving stack.  Every
host (simulated, threaded runtime, cluster broker/shard) fires the paper's
Figure-1 metric points into a :class:`Telemetry` facade, which maintains

* a thread-safe :class:`MetricsRegistry` (counters, gauges, log-bucketed
  histograms) rendered in the Prometheus text format,
* an optional :class:`DecisionTracer` recording one structured
  :class:`TraceEvent` per sampled query per metric point, exportable as
  JSONL,
* an optional :class:`SpanRecorder` giving every sampled query a full
  lifecycle trace (parent-linked :class:`Span` intervals: admission,
  queue wait, execution, fan-out rounds, retries, hedges, merges),
  exportable as JSONL and as Perfetto-loadable Chrome trace-event JSON,
* an optional :class:`CalibrationTracker` joining each point-1 prediction
  (Eq. 2 ``ewt_mean``, Eq. 3/4 ``ert_p``) to its point-2/3 measurements
  — per-type signed error, APE, rolling SLO attainment, and exclusive
  rejection attribution by Algorithm 1 term, and
* a stdlib :class:`TelemetryHTTPServer` serving ``/metrics``,
  ``/traces``, and ``/spans`` for live scrapes of a running host.

``repro trace-report``, ``repro spans``, and ``repro calibrate-report``
(see :mod:`repro.telemetry.report`, :mod:`repro.telemetry.spans`,
:mod:`repro.telemetry.calibration`) turn the exported data into the
paper-style tables.  Hosts accept ``telemetry=None`` (the default) and
then skip all of this at the cost of one ``is None`` test per metric
point.
"""

from .calibration import (DEFAULT_MAX_PENDING, DEFAULT_WINDOW,
                          CalibrationTracker, TypeCalibrationStats,
                          calibration_from_events,
                          render_calibration_report)
from .http import (CHROME_TRACE_CONTENT_TYPE, METRICS_CONTENT_TYPE,
                   TRACES_CONTENT_TYPE, TelemetryHTTPServer)
from .hub import Telemetry, TelemetryBatch
from .registry import (DEFAULT_PREFIX, EXPOSITION_LAYOUT, MetricFamily,
                       MetricsRegistry, escape_help, escape_label_value)
from .report import (TraceSummary, TypeTraceSummary, render_trace_report,
                     summarize_events, summarize_trace)
from .spans import (DEFAULT_SPAN_CAPACITY, Span, SpanContext, SpanHandle,
                    SpanRecorder, TypeSpanSummary, load_spans_jsonl,
                    parse_spans_jsonl, render_chrome_trace,
                    render_span_report, summarize_spans)
from .tracer import (DEFAULT_CAPACITY, DecisionTracer, TraceEvent,
                     load_jsonl, parse_jsonl)

__all__ = [
    "CHROME_TRACE_CONTENT_TYPE",
    "CalibrationTracker",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_PREFIX",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_WINDOW",
    "DecisionTracer",
    "EXPOSITION_LAYOUT",
    "METRICS_CONTENT_TYPE",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanHandle",
    "SpanRecorder",
    "TRACES_CONTENT_TYPE",
    "Telemetry",
    "TelemetryBatch",
    "TelemetryHTTPServer",
    "TraceEvent",
    "TraceSummary",
    "TypeCalibrationStats",
    "TypeSpanSummary",
    "TypeTraceSummary",
    "calibration_from_events",
    "escape_help",
    "escape_label_value",
    "load_jsonl",
    "load_spans_jsonl",
    "parse_jsonl",
    "parse_spans_jsonl",
    "render_calibration_report",
    "render_chrome_trace",
    "render_span_report",
    "render_trace_report",
    "summarize_events",
    "summarize_spans",
    "summarize_trace",
]
