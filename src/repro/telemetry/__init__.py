"""End-to-end telemetry: metric registry, decision traces, exposition.

The measurement substrate behind the reproduction's serving stack.  Every
host (simulated, threaded runtime, cluster broker/shard) fires the paper's
Figure-1 metric points into a :class:`Telemetry` facade, which maintains

* a thread-safe :class:`MetricsRegistry` (counters, gauges, log-bucketed
  histograms) rendered in the Prometheus text format,
* an optional :class:`DecisionTracer` recording one structured
  :class:`TraceEvent` per sampled query per metric point, exportable as
  JSONL, and
* a stdlib :class:`TelemetryHTTPServer` serving ``/metrics`` and
  ``/traces`` for live scrapes of a running host.

``repro trace-report <file.jsonl>`` (see :mod:`repro.telemetry.report`)
turns an exported trace into rejection-attribution and SLO-attainment
tables.  Hosts accept ``telemetry=None`` (the default) and then skip all
of this at the cost of one ``is None`` test per metric point.
"""

from .http import (METRICS_CONTENT_TYPE, TRACES_CONTENT_TYPE,
                   TelemetryHTTPServer)
from .hub import Telemetry
from .registry import (DEFAULT_PREFIX, EXPOSITION_LAYOUT, MetricFamily,
                       MetricsRegistry, escape_help, escape_label_value)
from .report import (TraceSummary, TypeTraceSummary, render_trace_report,
                     summarize_events, summarize_trace)
from .tracer import (DEFAULT_CAPACITY, DecisionTracer, TraceEvent,
                     load_jsonl, parse_jsonl)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_PREFIX",
    "DecisionTracer",
    "EXPOSITION_LAYOUT",
    "METRICS_CONTENT_TYPE",
    "MetricFamily",
    "MetricsRegistry",
    "TRACES_CONTENT_TYPE",
    "Telemetry",
    "TelemetryHTTPServer",
    "TraceEvent",
    "TraceSummary",
    "TypeTraceSummary",
    "escape_help",
    "escape_label_value",
    "load_jsonl",
    "parse_jsonl",
    "render_trace_report",
    "summarize_events",
    "summarize_trace",
]
