"""Summarize an exported decision trace into the paper's evaluation tables.

The paper's §5 analysis is built on two views of a run: *where rejections
came from* (per type and reason — the shape of Figures 11/12) and *whether
the completed queries met their SLO targets* (per-type percentile response
times against the configured objectives).  :func:`summarize_trace` derives
both from a JSONL trace exported by :class:`~repro.telemetry.tracer
.DecisionTracer`, and :func:`render_trace_report` prints them as aligned
tables (the ``repro trace-report`` subcommand).

SLO targets are taken from the decision events themselves (Bouncer records
the targets it compared against), so the report needs no side-channel
configuration: the trace file is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .._stats import mean, percentile
from .tracer import TraceEvent, load_jsonl


@dataclass
class TypeTraceSummary:
    """Per-query-type aggregates derived from one trace."""

    qtype: str
    accepted: int = 0
    rejected: int = 0
    expired: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    response_times: List[float] = field(default_factory=list)
    wait_times: List[float] = field(default_factory=list)
    #: Latest SLO targets observed in decision events: {"50": 0.018, ...}.
    slo: Dict[str, float] = field(default_factory=dict)

    @property
    def received(self) -> int:
        return self.accepted + self.rejected

    @property
    def completed(self) -> int:
        return len(self.response_times)

    @property
    def rejection_pct(self) -> float:
        received = self.received
        return 100.0 * self.rejected / received if received else 0.0

    def response_percentile(self, p: float) -> float:
        return percentile(sorted(self.response_times), p)

    def attainment(self, p: float, target: float) -> Optional[float]:
        """Fraction of completions at or under ``target`` (None if none).

        An SLO "pXX <= T" is attained when this fraction is >= XX/100.
        """
        if not self.response_times:
            return None
        under = sum(1 for rt in self.response_times if rt <= target)
        return under / len(self.response_times)


@dataclass
class TraceSummary:
    """Everything ``repro trace-report`` prints, in structured form."""

    per_type: Dict[str, TypeTraceSummary]
    events: int
    hosts: List[str]
    span: float  # seconds between first and last event timestamp
    #: Latest admission fast-path counter snapshot seen in a decision
    #: event ({"estimator_cache_hits": ..., "estimator_cache_misses":
    #: ..., "eq2_recomputes": ...}); empty when the trace predates the
    #: counters or the host ran without the fast path.
    fast_path: Dict[str, int] = field(default_factory=dict)

    def totals(self) -> TypeTraceSummary:
        total = TypeTraceSummary(qtype="ALL")
        for summary in self.per_type.values():
            total.accepted += summary.accepted
            total.rejected += summary.rejected
            total.expired += summary.expired
            for reason, count in summary.rejected_by_reason.items():
                total.rejected_by_reason[reason] = (
                    total.rejected_by_reason.get(reason, 0) + count)
            total.response_times.extend(summary.response_times)
            total.wait_times.extend(summary.wait_times)
        return total


def summarize_events(events: Sequence[TraceEvent]) -> TraceSummary:
    """Aggregate raw trace events into a :class:`TraceSummary`."""
    per_type: Dict[str, TypeTraceSummary] = {}
    hosts: List[str] = []
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    fast_path: Dict[str, int] = {}
    fast_path_ts: Optional[float] = None

    def entry(qtype: str) -> TypeTraceSummary:
        summary = per_type.get(qtype)
        if summary is None:
            summary = TypeTraceSummary(qtype=qtype)
            per_type[qtype] = summary
        return summary

    for event in events:
        if event.host and event.host not in hosts:
            hosts.append(event.host)
        if first_ts is None or event.ts < first_ts:
            first_ts = event.ts
        if last_ts is None or event.ts > last_ts:
            last_ts = event.ts
        summary = entry(event.qtype)
        if event.event == "decision":
            if event.accepted:
                summary.accepted += 1
            else:
                summary.rejected += 1
                reason = event.reason or "unknown"
                summary.rejected_by_reason[reason] = (
                    summary.rejected_by_reason.get(reason, 0) + 1)
            if event.slo:
                summary.slo = dict(event.slo)
            if event.fast_path and (fast_path_ts is None
                                    or event.ts >= fast_path_ts):
                # Counters are cumulative snapshots; keep the newest.
                fast_path = dict(event.fast_path)
                fast_path_ts = event.ts
        elif event.event == "completion":
            if event.response_time is not None:
                summary.response_times.append(event.response_time)
            if event.wait_time is not None:
                summary.wait_times.append(event.wait_time)
        elif event.event == "expired":
            summary.expired += 1
    span = ((last_ts - first_ts)
            if first_ts is not None and last_ts is not None else 0.0)
    return TraceSummary(per_type=per_type, events=len(events),
                        hosts=hosts, span=span, fast_path=fast_path)


def summarize_trace(path: str) -> TraceSummary:
    """Load a JSONL trace file and aggregate it."""
    return summarize_events(load_jsonl(path))


def _slo_percentiles(summary: TraceSummary) -> List[str]:
    """All percentile keys ("50", "90", …) any type's SLO constrains."""
    seen: List[str] = []
    for type_summary in summary.per_type.values():
        for key in type_summary.slo:
            if key not in seen:
                seen.append(key)
    return sorted(seen, key=float)


def render_trace_report(summary: TraceSummary) -> str:
    """Render the rejection-attribution and SLO-attainment tables."""
    # Deferred to avoid a telemetry <-> bench import cycle: the bench
    # package imports the simulators, which are telemetry-instrumented.
    from ..bench.tables import format_table

    sections: List[str] = []
    ordered = sorted(summary.per_type)
    reasons = sorted({reason
                      for s in summary.per_type.values()
                      for reason in s.rejected_by_reason})

    header = (f"trace: {summary.events} events, "
              f"{len(summary.per_type)} query types, "
              f"span {summary.span:.1f}s")
    if summary.hosts:
        header += f", hosts: {', '.join(summary.hosts)}"
    sections.append(header)

    # -- rejection attribution (the Fig. 11/12 shape) ---------------------
    rows = []
    for qtype in ordered + ["ALL"]:
        s = (summary.per_type[qtype] if qtype != "ALL"
             else summary.totals())
        row = [s.qtype, s.received, s.accepted, s.rejected,
               f"{s.rejection_pct:.2f}%", s.expired]
        for reason in reasons:
            row.append(s.rejected_by_reason.get(reason, 0))
        rows.append(row)
    sections.append(format_table(
        ["type", "received", "accepted", "rejected", "rej%", "expired"]
        + reasons,
        rows, title="Rejection attribution (traced decisions)"))

    # -- SLO attainment ---------------------------------------------------
    slo_ps = _slo_percentiles(summary)
    headers = ["type", "completed", "rt_mean (ms)"]
    for p in slo_ps:
        headers += [f"rt_p{p} (ms)", f"slo_p{p} (ms)", f"p{p} ok"]
    rows = []
    for qtype in ordered:
        s = summary.per_type[qtype]
        row: List[object] = [
            s.qtype, s.completed,
            f"{mean(s.response_times) * 1000:.2f}" if s.completed
            else "-"]
        for p in slo_ps:
            target = s.slo.get(p)
            measured = (s.response_percentile(float(p))
                        if s.completed else None)
            row.append(f"{measured * 1000:.2f}"
                       if measured is not None else "-")
            row.append(f"{target * 1000:.2f}"
                       if target is not None else "-")
            if target is None or not s.completed:
                row.append("-")
            else:
                attained = s.attainment(float(p), target)
                required = float(p) / 100.0
                ok = attained is not None and attained >= required
                row.append("yes" if ok else
                           f"NO ({attained:.0%}<{required:.0%})")
        rows.append(row)
    sections.append(format_table(
        headers, rows,
        title="SLO attainment (measured response times of traced "
              "completions vs targets recorded at decision time)"))

    # -- admission fast path ----------------------------------------------
    if summary.fast_path:
        hits = summary.fast_path.get("estimator_cache_hits", 0)
        misses = summary.fast_path.get("estimator_cache_misses", 0)
        recomputes = summary.fast_path.get("eq2_recomputes", 0)
        lookups = hits + misses
        hit_rate = f"{hits / lookups:.1%}" if lookups else "-"
        sections.append(format_table(
            ["estimator_cache_hits", "estimator_cache_misses",
             "hit rate", "eq2_recomputes"],
            [[hits, misses, hit_rate, recomputes]],
            title="Admission fast path (cumulative counters at the last "
                  "traced decision)"))
    return "\n\n".join(sections)
