"""Estimator calibration: joining Bouncer's predictions to measurements.

At point 1 (admission) Bouncer commits to estimates — the Eq. 2 mean queue
wait ``ewt_mean`` and the Eq. 3/4 percentile response times ``ert_p`` — and
at points 2/3 the framework measures what actually happened.  The decision
tracer records both sides but as disjoint events; this module performs the
join, per query, and maintains the derived views the ROADMAP's adaptive
items (self-tuning Bouncer, admission-aware autoscaling) need as input:

* **Signed error** per type: ``measured − predicted`` for the mean-wait
  estimate (against the point-2 wait) and each percentile estimate
  (against the point-3 response time).  Negative = overestimate
  (admission was too conservative), positive = underestimate (SLO risk).
* **Absolute percentage error (APE)** per type and estimator term, the
  paper-style accuracy view that is comparable across types with very
  different service times.
* **Rolling SLO attainment** per type: over the last *window* completions,
  the fraction that met each percentile target recorded at decision time.
* **Rejection attribution**: which term of Algorithm 1 fired — for
  ``slo_estimate`` rejections, the set of breached percentiles (e.g.
  ``p90`` or ``p50+p90``); for every other reason, the reason itself.
  Counters are exclusive, so they sum to the total rejected count.

Everything here is pure observation on the same deterministic sampling
hash the tracer uses; it never feeds back into admission.  State is
bounded: rolling windows are deques and the pending join table is capped
(oldest pending entries are evicted, counted in ``evicted``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .._stats import mean, percentile
from ..exceptions import ConfigurationError
from .tracer import TraceEvent, _HASH_MULTIPLIER, _HASH_SPACE

#: Default rolling-window length (per-type samples retained per series).
DEFAULT_WINDOW = 4096
#: Default cap on in-flight (decided but not yet measured) joins.
DEFAULT_MAX_PENDING = 65536


class _Pending:
    """One accepted decision awaiting its point-2/3 measurements."""

    __slots__ = ("qtype", "ewt_mean", "ert", "slo")

    def __init__(self, qtype: str, ewt_mean: Optional[float],
                 ert: Dict[str, float], slo: Dict[str, float]) -> None:
        self.qtype = qtype
        self.ewt_mean = ewt_mean
        self.ert = ert
        self.slo = slo


class _TypeCalibration:
    """Rolling per-type error and attainment series."""

    __slots__ = ("qtype", "window", "ewt_signed", "ewt_ape",
                 "ert_signed", "ert_ape", "attained", "joined",
                 "expired", "rejected_by_term")

    def __init__(self, qtype: str, window: int) -> None:
        self.qtype = qtype
        self.window = window
        #: measured_wait − ewt_mean, seconds.
        self.ewt_signed: Deque[float] = deque(maxlen=window)
        #: |measured_wait − ewt_mean| / measured_wait (when wait > 0).
        self.ewt_ape: Deque[float] = deque(maxlen=window)
        #: per percentile key ("50", "90"): measured_rt − ert_p, seconds.
        self.ert_signed: Dict[str, Deque[float]] = {}
        self.ert_ape: Dict[str, Deque[float]] = {}
        #: per percentile key: 1.0 if response_time <= slo target else 0.0.
        self.attained: Dict[str, Deque[float]] = {}
        self.joined = 0
        self.expired = 0
        #: exclusive attribution: breached-percentile label or reason.
        self.rejected_by_term: Dict[str, int] = {}

    def _series(self, table: Dict[str, Deque[float]],
                key: str) -> Deque[float]:
        series = table.get(key)
        if series is None:
            series = deque(maxlen=self.window)
            table[key] = series
        return series


class CalibrationTracker:
    """Joins point-1 predictions to point-2/3 measurements, per query.

    Feed it from the `Telemetry` facade (``note_*`` methods) or rebuild it
    offline from an exported JSONL trace with
    :func:`calibration_from_events`.  Thread-safe; all timestamps come
    from the caller's injected clock.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 sample_rate: float = 1.0) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.window = window
        self.max_pending = max_pending
        self.sample_rate = sample_rate
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._lock = threading.Lock()
        self._pending: "OrderedDict[int, _Pending]" = OrderedDict()
        self._per_type: Dict[str, _TypeCalibration] = {}
        self.rejected_total = 0
        self.evicted = 0

    def sampled(self, query_id: int) -> bool:
        """Deterministic per-query verdict (same hash as the tracer)."""
        if self._threshold >= _HASH_SPACE:
            return True
        if self._threshold <= 0:
            return False
        return (query_id * _HASH_MULTIPLIER) % _HASH_SPACE < self._threshold

    def _entry(self, qtype: str) -> _TypeCalibration:
        entry = self._per_type.get(qtype)
        if entry is None:
            entry = _TypeCalibration(qtype, self.window)
            self._per_type[qtype] = entry
        return entry

    # -- feed (point events) ----------------------------------------------
    def note_decision(self, query_id: int, qtype: str, accepted: bool,
                      reason: Optional[str],
                      ewt_mean: Optional[float],
                      ert: Dict[str, float],
                      slo: Dict[str, float]) -> None:
        """Record a point-1 verdict (sampling is applied here)."""
        if not self.sampled(query_id):
            return
        with self._lock:
            entry = self._entry(qtype)
            if not accepted:
                self.rejected_total += 1
                term = self._attribution(reason, ert, slo)
                entry.rejected_by_term[term] = (
                    entry.rejected_by_term.get(term, 0) + 1)
                return
            self._pending[query_id] = _Pending(
                qtype, ewt_mean, dict(ert), dict(slo))
            while len(self._pending) > self.max_pending:
                self._pending.popitem(last=False)
                self.evicted += 1

    @staticmethod
    def _attribution(reason: Optional[str], ert: Dict[str, float],
                     slo: Dict[str, float]) -> str:
        """Exclusive attribution label for one rejection.

        Algorithm 1 rejects when *any* percentile estimate exceeds its
        target; the label names every term that breached, so a rejection
        caused jointly by p50 and p90 counts once as ``p50+p90``.
        """
        if reason != "slo_estimate":
            return reason or "unknown"
        breached = sorted(
            (key for key, estimate in ert.items()
             if key in slo and estimate > slo[key]), key=float)
        if not breached:
            return "slo_estimate"
        return "+".join(f"p{key}" for key in breached)

    def note_dequeue(self, query_id: int, wait_time: float) -> None:
        """Record the point-2 measured queue wait for a pending join."""
        with self._lock:
            pending = self._pending.get(query_id)
            if pending is None:
                return
            entry = self._entry(pending.qtype)
            if pending.ewt_mean is not None:
                signed = wait_time - pending.ewt_mean
                entry.ewt_signed.append(signed)
                if wait_time > 0:
                    entry.ewt_ape.append(abs(signed) / wait_time)

    def note_completion(self, query_id: int,
                        response_time: float) -> None:
        """Record the point-3 measured response time; completes the join."""
        with self._lock:
            pending = self._pending.pop(query_id, None)
            if pending is None:
                return
            entry = self._entry(pending.qtype)
            entry.joined += 1
            for key, estimate in pending.ert.items():
                signed = response_time - estimate
                entry._series(entry.ert_signed, key).append(signed)
                if response_time > 0:
                    entry._series(entry.ert_ape, key).append(
                        abs(signed) / response_time)
            for key, target in pending.slo.items():
                entry._series(entry.attained, key).append(
                    1.0 if response_time <= target else 0.0)

    def note_expired(self, query_id: int, qtype: str) -> None:
        """An admitted query hit its deadline before completing.

        The join is abandoned (there is no point-3 measurement) but the
        expiry itself is evidence of estimator optimism, so it is counted
        and every SLO percentile window records a miss.  The sampling
        verdict is re-applied here because expiry is the one exit path
        that can arrive without a pending join (all-or-nothing join
        integrity: unsampled queries must not leak into any counter).
        """
        if not self.sampled(query_id):
            return
        with self._lock:
            pending = self._pending.pop(query_id, None)
            entry = self._entry(pending.qtype if pending else qtype)
            entry.expired += 1
            if pending is not None:
                for key in pending.slo:
                    entry._series(entry.attained, key).append(0.0)

    # -- derived views -----------------------------------------------------
    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def qtypes(self) -> List[str]:
        with self._lock:
            return sorted(self._per_type)

    def rejection_attribution(self) -> Dict[str, Dict[str, int]]:
        """Per-type exclusive rejection counters: {qtype: {term: n}}."""
        with self._lock:
            return {qtype: dict(entry.rejected_by_term)
                    for qtype, entry in self._per_type.items()}

    def type_stats(self, qtype: str) -> Optional["TypeCalibrationStats"]:
        """Frozen summary statistics for one type (None if never seen)."""
        with self._lock:
            entry = self._per_type.get(qtype)
            if entry is None:
                return None
            return TypeCalibrationStats.from_entry(entry)

    def stats(self) -> Dict[str, "TypeCalibrationStats"]:
        """Frozen summary statistics for every observed type."""
        with self._lock:
            return {qtype: TypeCalibrationStats.from_entry(entry)
                    for qtype, entry in self._per_type.items()}

    def gauge_values(self) -> List[Tuple[Dict[str, str], float]]:
        """Flattened (labels, value) pairs for registry exposition."""
        out: List[Tuple[Dict[str, str], float]] = []
        for qtype, stat in sorted(self.stats().items()):
            if stat.ewt_signed_mean is not None:
                out.append(({"qtype": qtype, "estimator": "ewt_mean",
                             "stat": "signed_error_mean"},
                            stat.ewt_signed_mean))
            if stat.ewt_ape_mean is not None:
                out.append(({"qtype": qtype, "estimator": "ewt_mean",
                             "stat": "ape_mean"}, stat.ewt_ape_mean))
            for key, value in sorted(stat.ert_signed_mean.items()):
                out.append(({"qtype": qtype, "estimator": f"ert_p{key}",
                             "stat": "signed_error_mean"}, value))
            for key, value in sorted(stat.ert_ape_mean.items()):
                out.append(({"qtype": qtype, "estimator": f"ert_p{key}",
                             "stat": "ape_mean"}, value))
            for key, value in sorted(stat.attainment.items()):
                out.append(({"qtype": qtype, "estimator": f"slo_p{key}",
                             "stat": "attainment"}, value))
        return out


class TypeCalibrationStats:
    """Frozen per-type calibration summary (what the report prints)."""

    __slots__ = ("qtype", "joined", "expired", "rejected_by_term",
                 "ewt_signed_mean", "ewt_signed_p90", "ewt_ape_mean",
                 "ert_signed_mean", "ert_ape_mean", "attainment",
                 "window_fill")

    def __init__(self, qtype: str) -> None:
        self.qtype = qtype
        self.joined = 0
        self.expired = 0
        self.rejected_by_term: Dict[str, int] = {}
        self.ewt_signed_mean: Optional[float] = None
        self.ewt_signed_p90: Optional[float] = None
        self.ewt_ape_mean: Optional[float] = None
        self.ert_signed_mean: Dict[str, float] = {}
        self.ert_ape_mean: Dict[str, float] = {}
        self.attainment: Dict[str, float] = {}
        self.window_fill = 0

    @classmethod
    def from_entry(cls, entry: _TypeCalibration) -> "TypeCalibrationStats":
        stat = cls(entry.qtype)
        stat.joined = entry.joined
        stat.expired = entry.expired
        stat.rejected_by_term = dict(entry.rejected_by_term)
        if entry.ewt_signed:
            samples = list(entry.ewt_signed)
            stat.ewt_signed_mean = mean(samples)
            stat.ewt_signed_p90 = percentile(sorted(samples), 90.0)
            stat.window_fill = len(samples)
        if entry.ewt_ape:
            stat.ewt_ape_mean = mean(list(entry.ewt_ape))
        for key, series in entry.ert_signed.items():
            if series:
                stat.ert_signed_mean[key] = mean(list(series))
        for key, series in entry.ert_ape.items():
            if series:
                stat.ert_ape_mean[key] = mean(list(series))
        for key, series in entry.attained.items():
            if series:
                stat.attainment[key] = mean(list(series))
        return stat

    @property
    def rejected(self) -> int:
        return sum(self.rejected_by_term.values())


def calibration_from_events(events: Sequence[TraceEvent],
                            window: int = DEFAULT_WINDOW
                            ) -> CalibrationTracker:
    """Rebuild a tracker offline from exported decision-trace events.

    The trace is self-describing (decisions carry estimates and SLO
    targets), so this replays the same join the live tracker performs —
    the ``repro calibrate-report --trace`` path.
    """
    tracker = CalibrationTracker(window=window)
    for event in events:
        if event.event == "decision":
            tracker.note_decision(
                event.query_id, event.qtype,
                accepted=bool(event.accepted), reason=event.reason,
                ewt_mean=event.ewt_mean, ert=event.ert, slo=event.slo)
        elif event.event == "dequeue":
            if event.wait_time is not None:
                tracker.note_dequeue(event.query_id, event.wait_time)
        elif event.event == "completion":
            if event.response_time is not None:
                tracker.note_completion(event.query_id,
                                        event.response_time)
        elif event.event == "expired":
            tracker.note_expired(event.query_id, event.qtype)
    return tracker


def render_calibration_report(tracker: CalibrationTracker,
                              title: Optional[str] = None) -> str:
    """Render the predicted-vs-measured and attribution tables
    (the ``repro calibrate-report`` output); ``title`` labels the
    decision source."""
    # Deferred to avoid a telemetry <-> bench import cycle (the bench
    # package imports the telemetry-instrumented simulators).
    from ..bench.tables import format_table

    def ms(value: Optional[float]) -> str:
        return f"{value * 1000:+.3f}" if value is not None else "-"

    def pct(value: Optional[float]) -> str:
        return f"{value * 100:.1f}%" if value is not None else "-"

    stats = tracker.stats()
    ordered = sorted(stats)
    sections: List[str] = []

    ert_keys = sorted({key for stat in stats.values()
                       for key in stat.ert_signed_mean}, key=float)
    att_keys = sorted({key for stat in stats.values()
                       for key in stat.attainment}, key=float)

    headers = ["type", "joined", "expired", "ewt err (ms)",
               "ewt p90 err (ms)", "ewt APE"]
    for key in ert_keys:
        headers += [f"ert_p{key} err (ms)", f"ert_p{key} APE"]
    for key in att_keys:
        headers.append(f"p{key} att")
    rows = []
    for qtype in ordered:
        stat = stats[qtype]
        row: List[object] = [qtype, stat.joined, stat.expired,
                             ms(stat.ewt_signed_mean),
                             ms(stat.ewt_signed_p90),
                             pct(stat.ewt_ape_mean)]
        for key in ert_keys:
            row.append(ms(stat.ert_signed_mean.get(key)))
            row.append(pct(stat.ert_ape_mean.get(key)))
        for key in att_keys:
            row.append(pct(stat.attainment.get(key)))
        rows.append(row)
    caption = ("Estimator calibration (measured - predicted; negative = "
               "overestimate / conservative admission)")
    if title:
        caption = f"{caption} — {title}"
    sections.append(format_table(headers, rows, title=caption))

    # -- rejection attribution by Algorithm 1 term ------------------------
    terms = sorted({term for stat in stats.values()
                    for term in stat.rejected_by_term})
    headers = ["type", "rejected"] + terms
    rows = []
    total_by_term: Dict[str, int] = {}
    total_rejected = 0
    for qtype in ordered:
        stat = stats[qtype]
        row = [qtype, stat.rejected]
        for term in terms:
            count = stat.rejected_by_term.get(term, 0)
            row.append(count)
            total_by_term[term] = total_by_term.get(term, 0) + count
        total_rejected += stat.rejected
        rows.append(row)
    rows.append(["ALL", total_rejected]
                + [total_by_term.get(term, 0) for term in terms])
    sections.append(format_table(
        headers, rows,
        title="Rejection attribution by Algorithm 1 term (exclusive; "
              f"rows sum to rejected; sampled rejections: "
              f"{tracker.rejected_total})"))
    return "\n\n".join(sections)
