"""End-to-end lifecycle spans for sampled queries (``repro.tracing``).

Where the decision tracer records *point crossings* (the paper's Figure-1
metric points), this module records *intervals*: every sampled query gets
one trace — client send → admission → queue wait → execution (in the
cluster model: per-round fan-out, per-shard sub-query attempts, retries,
hedges, merges) → response, expiry, or rejection — as a tree of
:class:`Span` records linked by ``trace_id`` / ``parent_id``.

Design constraints, in order:

* **Pure observation.**  Span emission never touches an RNG, never reads a
  clock itself (every timestamp is passed in from the host's injected
  clock), and never feeds back into admission — decisions are bit-identical
  with tracing on or off (``tests/test_spans.py`` holds a differential
  guard on the Figure-6 workload).
* **Deterministic sampling.**  The per-trace sampling verdict is the same
  multiplicative hash of the root query id the decision tracer uses, so a
  seeded run samples the same queries every time, and a query's metric-point
  events and its spans are sampled *together* (join integrity).
* **Deterministic ids.**  ``trace_id`` is the root query id; span ids are
  numbered in creation order within their trace.  Two seeded runs produce
  byte-identical span files.
* **Closed on all exit paths.**  Every opened span must be finished —
  rejection, expiry, injected fault, handler exception included.  The
  ``span-must-finish`` lint rule enforces the static discipline and
  :attr:`SpanRecorder.open_count` lets tests assert the dynamic one.

Export formats: JSONL (one span per line, mirrors the decision tracer) and
the Chrome trace-event format (``catapult`` JSON), which Perfetto and
``chrome://tracing`` load directly for a flame-chart view of where time
went.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..exceptions import ConfigurationError
from .tracer import _HASH_MULTIPLIER, _HASH_SPACE

#: Default ring-buffer capacity (finished spans, not traces).
DEFAULT_SPAN_CAPACITY = 65536

#: Span names considered queueing time by the critical-path breakdown.
QUEUE_SPANS = frozenset({"queue_wait"})
#: Span names considered engine execution time.
EXECUTE_SPANS = frozenset({"execute", "shard_execute"})
#: Span names considered fan-out coordination time (cluster model).
FANOUT_SPANS = frozenset({"fanout_round", "subquery", "shard_attempt"})
#: Span names attributed to resilience machinery.
RETRY_SPANS = frozenset({"retry"})
HEDGE_SPANS = frozenset({"hedge"})
MERGE_SPANS = frozenset({"merge"})

#: Shared sentinel for "no attributes yet": most spans never get attrs,
#: so the hot path avoids allocating a dict per span.  Never mutated —
#: :meth:`Span.annotate` / :meth:`Span.finish` copy-on-write past it.
_EMPTY_ATTRS: Dict[str, Any] = {}


class Span:
    """One timed interval in a query's lifecycle trace.

    ``trace_id`` is the root query's id; ``parent_id`` is ``None`` only for
    the root span.  ``status`` is ``"ok"`` on the happy path and otherwise
    names the exit path (``rejected``, ``expired``, ``error``, ``fault``,
    ``failed``, ``degraded``).  ``attrs`` carries small structured extras
    (rejection reason, shard index, retry attempt number).

    A span opened by a :class:`SpanRecorder` is its own handle: it carries
    its recorder and per-trace id allocator, so :meth:`child_span` /
    :meth:`finish` need no wrapper object (the per-query hot path
    allocates exactly one object per span).  Spans parsed back from an
    export have no recorder and are read-only records.  An *open* span
    must be :meth:`finish`-ed on every exit path — rejection, expiry,
    exception — or handed off to the component that will (the
    ``span-must-finish`` lint rule checks the static discipline).
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "qtype",
                 "host", "start", "end", "status", "attrs",
                 "_recorder", "_state")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, qtype: str, host: str, start: float,
                 end: Optional[float] = None, status: str = "ok",
                 attrs: Optional[Dict[str, Any]] = None,
                 recorder: Optional["SpanRecorder"] = None,
                 state: Optional["_TraceState"] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.qtype = qtype
        self.host = host
        self.start = start
        self.end = end
        self.status = status
        self.attrs: Dict[str, Any] = (attrs if attrs is not None
                                      else _EMPTY_ATTRS)
        self._recorder = recorder
        self._state = state

    # -- handle methods (valid on spans opened by a recorder) -------------
    def child_span(self, name: str, now: float,
                   host: Optional[str] = None, **attrs: Any) -> "Span":
        """Open a child span starting at ``now`` (host defaults to ours)."""
        return self._recorder._open(  # type: ignore[union-attr]
            self._state, self.trace_id, self.span_id, name, self.qtype,
            host if host is not None else self.host, now, attrs)

    def marker(self, name: str, now: float, status: str = "ok",
               host: Optional[str] = None, **attrs: Any) -> None:
        """Record an instantaneous child span (opened and closed at
        ``now``) — injected-fault and annotation events use this so no
        handle needs to be carried around."""
        child = self.child_span(name, now, host=host, **attrs)
        child.finish(now, status=status)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes without closing the span."""
        if self.attrs is _EMPTY_ATTRS:
            self.attrs = {}
        self.attrs.update(attrs)

    def finish(self, now: float, status: Optional[str] = None,
               **attrs: Any) -> None:
        """Close the span at ``now`` (idempotent; first close wins)."""
        if self.end is not None:
            return
        self.end = now
        if status is not None:
            self.status = status
        if attrs:
            if self.attrs is _EMPTY_ATTRS:
                self.attrs = {}
            self.attrs.update(attrs)
        self._recorder._close(self)  # type: ignore[union-attr]

    @property
    def duration(self) -> Optional[float]:
        """Seconds between start and finish (``None`` while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict:
        out: dict = {"trace_id": self.trace_id, "span_id": self.span_id,
                     "name": self.name, "qtype": self.qtype,
                     "host": self.host, "start": self.start,
                     "end": self.end, "status": self.status}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(trace_id=int(data["trace_id"]),
                   span_id=int(data["span_id"]),
                   parent_id=data.get("parent_id"),
                   name=data["name"], qtype=data["qtype"],
                   host=data.get("host", ""),
                   start=float(data["start"]),
                   end=(float(data["end"])
                        if data.get("end") is not None else None),
                   status=data.get("status", "ok"),
                   attrs=dict(data.get("attrs", {})))

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id}, "
                f"status={self.status!r}, start={self.start}, "
                f"end={self.end})")


class _TraceState:
    """Per-trace span-id allocator (ids are creation-ordered per trace)."""

    __slots__ = ("next_id",)

    def __init__(self) -> None:
        self.next_id = 1

    def allocate(self) -> int:
        span_id = self.next_id
        self.next_id += 1
        return span_id


#: Historical name for an *open* span.  Handles used to be a wrapper
#: object; the wrapper cost three allocations per query on the hot path,
#: so open spans now serve as their own handles.
SpanHandle = Span


class SpanContext:
    """The open span handles a host carries on a query while it flows
    through the framework (stored at ``query.span_ctx``).

    ``root`` spans the whole lifecycle; ``queue`` and ``execute`` are the
    currently open phase spans (at most one is open at a time).
    ``execute_name`` is the name the execution child span will get —
    ``"execute"`` on primary hosts, ``"shard_execute"`` for adopted
    shard-side attempts, so the critical-path breakdown can tell engine
    time on the two tiers apart.

    A lifecycle context doubles as the trace's span-id allocator (same
    duck type as ``_TraceState``; ids 1 and 2 are the root and queue-wait
    spans, so children start at 3) and carries ``closed``, the count of
    phase spans finished without their ``recorded`` accounting yet —
    :meth:`SpanRecorder.transition_execute` runs lock-free and defers
    that bookkeeping to :meth:`SpanRecorder.finish_lifecycle`.
    """

    __slots__ = ("root", "queue", "execute", "execute_name", "next_id",
                 "closed")

    def __init__(self, root: Optional[Span] = None,
                 queue: Optional[Span] = None,
                 execute: Optional[Span] = None,
                 execute_name: str = "execute") -> None:
        self.root = root
        self.queue = queue
        self.execute = execute
        self.execute_name = execute_name
        self.next_id = 3
        self.closed = 0

    def allocate(self) -> int:
        span_id = self.next_id
        self.next_id += 1
        return span_id


class SpanRecorder:
    """Bounded, sampled recorder of lifecycle spans.

    Parameters
    ----------
    capacity:
        Ring-buffer size for *finished* spans; oldest evicted first, with
        :attr:`dropped` counting evictions.
    sample_rate:
        Fraction of traces recorded, in ``[0, 1]``; the verdict is the
        decision tracer's deterministic hash of the root query id, so the
        same queries are sampled by both subsystems.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY,
                 sample_rate: float = 1.0) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._lock = threading.Lock()
        self._finished: Deque[Span] = deque(maxlen=capacity)
        # Keyed by ``id(span)``: the table holds the only strong reference
        # an open span needs, the key can't collide while the entry lives,
        # and both store and pop are cheaper than composite tuple keys.
        self._open_spans: Dict[int, Span] = {}
        # Lifecycle contexts opened by :meth:`open_lifecycle`, keyed by
        # ``id(ctx)``.  Their root/queue/execute spans live on the context
        # rather than in ``_open_spans`` — one store + one pop per query
        # instead of one pair per span on the hot path.
        self._open_ctxs: Dict[int, "SpanContext"] = {}
        self.recorded = 0

    def sampled(self, query_id: int) -> bool:
        """Deterministic per-trace sampling verdict (one multiply)."""
        if self._threshold >= _HASH_SPACE:
            return True
        if self._threshold <= 0:
            return False
        return (query_id * _HASH_MULTIPLIER) % _HASH_SPACE < self._threshold

    # -- span lifecycle ---------------------------------------------------
    def begin_trace(self, query_id: int, qtype: str, host: str,
                    now: float, name: str = "query"
                    ) -> Optional[Span]:
        """Open the root span of a new trace, or ``None`` if unsampled."""
        if not self.sampled(query_id):
            return None
        state = _TraceState()
        return self._open(state, query_id, None, name, qtype, host, now, {})

    def record_trace(self, query_id: int, qtype: str, host: str,
                     start: float, end: float, status: str = "ok",
                     name: str = "query", **attrs: Any) -> bool:
        """Record a complete single-span trace atomically (if sampled).

        Rejections use this: the whole lifecycle is one interval with no
        children, so no open handle ever exists to leak."""
        if not self.sampled(query_id):
            return False
        with self._lock:
            span = Span(trace_id=query_id, span_id=1, parent_id=None,
                        name=name, qtype=qtype, host=host, start=start,
                        end=end, status=status, attrs=dict(attrs))
            self._finished.append(span)
            self.recorded += 1
        return True

    def _open(self, state: _TraceState, trace_id: int,
              parent_id: Optional[int], name: str, qtype: str, host: str,
              now: float, attrs: Dict[str, Any]) -> Span:
        span = Span(trace_id, state.allocate(), parent_id, name, qtype,
                    host, now, attrs=attrs if attrs else None,
                    recorder=self, state=state)
        # A single dict store is GIL-atomic, so the open table needs no
        # lock here; every *finished*-side mutation stays under the lock.
        self._open_spans[id(span)] = span
        return span

    def _close(self, span: Span) -> None:
        with self._lock:
            self._open_spans.pop(id(span), None)
            self._finished.append(span)
            self.recorded += 1

    # -- batched lifecycle transitions (the per-query hot path) -----------
    # One recorder call (and at most one lock acquisition) per Figure-1
    # point keeps full-sampling span overhead inside the bench budget
    # (see ``SPAN_OVERHEAD_TOLERANCE`` in repro.bench.perf).

    def open_lifecycle(self, query_id: int, qtype: str, host: str,
                       start: float, now: float
                       ) -> Optional["SpanContext"]:
        """Open a root span (at ``start``) plus its ``queue_wait`` child
        (at ``now``) in one operation; ``None`` if the trace is unsampled.
        This is the accepted-admission fast path."""
        threshold = self._threshold
        if threshold < _HASH_SPACE and (
                threshold <= 0
                or (query_id * _HASH_MULTIPLIER) % _HASH_SPACE >= threshold):
            return None
        ctx = SpanContext()
        root = Span(query_id, 1, None, "query", qtype, host, start,
                    None, "ok", None, self, ctx)
        queue = Span(query_id, 2, 1, "queue_wait", qtype, host, now,
                     None, "ok", None, self, ctx)
        ctx.root = root
        ctx.queue = queue
        self._open_ctxs[id(ctx)] = ctx
        return ctx

    def transition_execute(self, ctx: "SpanContext", now: float,
                           host: str) -> None:
        """Close ``ctx``'s queue-wait span and open its execution span
        (named ``ctx.execute_name``).  Lock-free: every shared-state
        mutation here is a single GIL-atomic dict/deque operation, and
        the closed queue span's ``recorded`` accounting is deferred to
        :meth:`finish_lifecycle` via ``ctx.closed``."""
        root = ctx.root
        state = root._state
        # A lifecycle context is its own allocator; its spans live on the
        # context, not in the open-span table.  Adopted contexts (root
        # opened by another host via ``child_span``) keep per-span entries.
        tracked = state is ctx
        span = Span(root.trace_id, state.allocate(),  # type: ignore[union-attr]
                    root.span_id, ctx.execute_name,
                    root.qtype, host, now, None, "ok", None, self, state)
        queue = ctx.queue
        if queue is not None and queue.end is None:
            queue.end = now
            if not tracked:
                self._open_spans.pop(id(queue), None)
            self._finished.append(queue)
            ctx.closed += 1
        if not tracked:
            self._open_spans[id(span)] = span
        ctx.queue = None
        ctx.execute = span

    def finish_lifecycle(self, ctx: "SpanContext", now: float,
                         status: str) -> None:
        """Close every phase span ``ctx`` still holds open (queue-wait,
        execution, root) at ``now`` in one locked sweep.  The root keeps
        ``status``; an open queue-wait span closes neutrally on ``"ok"``
        roots (it ended when the query left the queue, not abnormally)."""
        queue = ctx.queue
        execute = ctx.execute
        root = ctx.root
        tracked = root is not None and root._state is ctx
        open_spans = self._open_spans
        finished = self._finished
        closed = ctx.closed
        with self._lock:
            if queue is not None and queue.end is None:
                queue.end = now
                # Queue-wait only carries an abnormal status when the
                # query died *in* the queue; execution-phase failures
                # close it neutrally (it ended at dequeue).
                if status == "expired":
                    queue.status = "expired"
                if not tracked:
                    open_spans.pop(id(queue), None)
                finished.append(queue)
                closed += 1
            if execute is not None and execute.end is None:
                execute.end = now
                if status != "ok":
                    execute.status = status
                if not tracked:
                    open_spans.pop(id(execute), None)
                finished.append(execute)
                closed += 1
            if root is not None and root.end is None:
                root.end = now
                if status != "ok":
                    root.status = status
                if not tracked:
                    open_spans.pop(id(root), None)
                finished.append(root)
                closed += 1
            self.recorded += closed
            if tracked:
                self._open_ctxs.pop(id(ctx), None)
        ctx.closed = 0

    # -- introspection ----------------------------------------------------
    @staticmethod
    def _ctx_open(ctx: "SpanContext") -> List[Span]:
        return [span for span in (ctx.root, ctx.queue, ctx.execute)
                if span is not None and span.end is None]

    @property
    def open_count(self) -> int:
        """Spans opened but not yet finished (must drain to 0 after a
        run — the dynamic side of ``span-must-finish``)."""
        with self._lock:
            return len(self._open_spans) + sum(
                len(self._ctx_open(ctx))
                for ctx in self._open_ctxs.values())

    def open_spans(self) -> List[Span]:
        """Snapshot of currently open spans (diagnostics and tests)."""
        with self._lock:
            out = list(self._open_spans.values())
            for ctx in self._open_ctxs.values():
                out.extend(self._ctx_open(ctx))
            return out

    @property
    def dropped(self) -> int:
        """Finished spans evicted from the ring buffer so far."""
        with self._lock:
            return max(0, self.recorded - len(self._finished))

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def spans(self, limit: Optional[int] = None,
              qtype: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first (newest when limited), optionally
        restricted to one query type."""
        with self._lock:
            snapshot = list(self._finished)
        if qtype is not None:
            snapshot = [span for span in snapshot if span.qtype == qtype]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open_spans.clear()
            self._open_ctxs.clear()
            self.recorded = 0

    # -- export -----------------------------------------------------------
    def render_jsonl(self, limit: Optional[int] = None,
                     qtype: Optional[str] = None) -> str:
        """Finished spans as JSONL text (the ``/spans`` endpoint body)."""
        lines = [span.to_json() for span in self.spans(limit, qtype)]
        if not lines:
            return ""
        return "\n".join(lines) + "\n"

    def export_jsonl(self, path: str,
                     limit: Optional[int] = None) -> int:
        """Write finished spans to ``path``; returns the spans written."""
        spans = self.spans(limit)
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(span.to_json())
                handle.write("\n")
        return len(spans)

    def render_chrome(self, limit: Optional[int] = None,
                      qtype: Optional[str] = None) -> str:
        """Finished spans in the Chrome trace-event format."""
        return render_chrome_trace(self.spans(limit, qtype))

    def export_chrome(self, path: str,
                      limit: Optional[int] = None) -> int:
        """Write a Perfetto-loadable Chrome trace file; returns the span
        count exported."""
        spans = self.spans(limit)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_chrome_trace(spans))
            handle.write("\n")
        return len(spans)


def parse_spans_jsonl(text: str) -> List[Span]:
    """Parse JSONL span text back into spans (blank lines skipped)."""
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except (ValueError, KeyError) as exc:
            raise ConfigurationError(
                f"malformed span line {lineno}: {exc}") from exc
    return spans


def load_spans_jsonl(path: str) -> List[Span]:
    """Read a JSONL span file exported by :meth:`SpanRecorder.export_jsonl`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_spans_jsonl(handle.read())


def render_chrome_trace(spans: List[Span]) -> str:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable).

    Each host becomes one "process" (with a ``process_name`` metadata
    record so Perfetto shows the host label); each trace renders as one
    "thread" within the host that owns its root span, so a query's
    lifecycle reads as a single lane in the flame chart.  Durations are
    complete events (``"ph": "X"``) with microsecond timestamps.
    """
    pids: Dict[str, int] = {}
    events: List[dict] = []
    for span in spans:
        pid = pids.setdefault(span.host, len(pids) + 1)
        if span.end is None:
            continue
        args: Dict[str, Any] = {"status": span.status,
                                "qtype": span.qtype,
                                "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.qtype,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (span.end - span.start) * 1e6,
            "pid": pid,
            "tid": span.trace_id,
            "args": args,
        })
    meta = [{"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": host}}
            for host, pid in sorted(pids.items(), key=lambda kv: kv[1])]
    return json.dumps({"traceEvents": meta + events,
                       "displayTimeUnit": "ms"}, sort_keys=True)


class TypeSpanSummary:
    """Per-query-type critical-path aggregates derived from spans."""

    __slots__ = ("qtype", "traces", "completed", "rejected", "expired",
                 "failed", "total", "queue_wait", "execute", "fanout",
                 "retry", "hedge", "merge", "retries", "hedges", "faults")

    def __init__(self, qtype: str) -> None:
        self.qtype = qtype
        self.traces = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        #: Summed seconds per critical-path category across all traces.
        self.total = 0.0
        self.queue_wait = 0.0
        self.execute = 0.0
        self.fanout = 0.0
        self.retry = 0.0
        self.hedge = 0.0
        self.merge = 0.0
        self.retries = 0
        self.hedges = 0
        self.faults = 0

    def mean(self, category_sum: float) -> float:
        """Mean seconds per trace for one category sum."""
        return category_sum / self.traces if self.traces else 0.0


def summarize_spans(spans: List[Span]) -> Dict[str, TypeSpanSummary]:
    """Aggregate spans into per-type critical-path breakdowns.

    Only root spans define trace membership and outcome; child spans
    contribute their durations to the category their name maps to
    (queue wait, execution, fan-out, retry, hedge, merge).
    """
    per_type: Dict[str, TypeSpanSummary] = {}

    def entry(qtype: str) -> TypeSpanSummary:
        summary = per_type.get(qtype)
        if summary is None:
            summary = TypeSpanSummary(qtype)
            per_type[qtype] = summary
        return summary

    for span in spans:
        summary = entry(span.qtype)
        duration = span.duration or 0.0
        if span.parent_id is None:
            summary.traces += 1
            summary.total += duration
            if span.status == "ok" or span.status == "degraded":
                summary.completed += 1
            elif span.status == "expired":
                summary.expired += 1
            elif span.status in ("rejected", "fault"):
                summary.rejected += 1
            else:
                summary.failed += 1
            continue
        if span.name in QUEUE_SPANS:
            summary.queue_wait += duration
        elif span.name in EXECUTE_SPANS:
            summary.execute += duration
        elif span.name in FANOUT_SPANS:
            summary.fanout += duration
        elif span.name in RETRY_SPANS:
            summary.retry += duration
            summary.retries += 1
        elif span.name in HEDGE_SPANS:
            summary.hedge += duration
            summary.hedges += 1
        elif span.name in MERGE_SPANS:
            summary.merge += duration
        if span.name == "fault":
            summary.faults += 1
    return per_type


def render_span_report(per_type: Dict[str, TypeSpanSummary],
                       title: Optional[str] = None) -> str:
    """Render the per-type critical-path breakdown table
    (the ``repro spans`` output); ``title`` labels the span source."""
    # Deferred to avoid a telemetry <-> bench import cycle (the bench
    # package imports the telemetry-instrumented simulators).
    from ..bench.tables import format_table

    def ms(value: float) -> str:
        return f"{value * 1000:.3f}"

    headers = ["type", "traces", "ok", "rej", "exp", "fail",
               "total (ms)", "queue (ms)", "exec (ms)", "fanout (ms)",
               "retry (ms)", "hedge (ms)", "merge (ms)"]
    rows = []
    totals = TypeSpanSummary("ALL")
    for qtype in sorted(per_type):
        s = per_type[qtype]
        rows.append([s.qtype, s.traces, s.completed, s.rejected,
                     s.expired, s.failed, ms(s.mean(s.total)),
                     ms(s.mean(s.queue_wait)), ms(s.mean(s.execute)),
                     ms(s.mean(s.fanout)), ms(s.mean(s.retry)),
                     ms(s.mean(s.hedge)), ms(s.mean(s.merge))])
        totals.traces += s.traces
        totals.completed += s.completed
        totals.rejected += s.rejected
        totals.expired += s.expired
        totals.failed += s.failed
        totals.total += s.total
        totals.queue_wait += s.queue_wait
        totals.execute += s.execute
        totals.fanout += s.fanout
        totals.retry += s.retry
        totals.hedge += s.hedge
        totals.merge += s.merge
        totals.retries += s.retries
        totals.hedges += s.hedges
    s = totals
    rows.append([s.qtype, s.traces, s.completed, s.rejected, s.expired,
                 s.failed, ms(s.mean(s.total)), ms(s.mean(s.queue_wait)),
                 ms(s.mean(s.execute)), ms(s.mean(s.fanout)),
                 ms(s.mean(s.retry)), ms(s.mean(s.hedge)),
                 ms(s.mean(s.merge))])
    caption = ("Critical-path breakdown (mean ms per traced query, "
               f"{totals.retries} retries / {totals.hedges} hedges "
               "spanned)")
    if title:
        caption = f"{caption} — {title}"
    return format_table(headers, rows, title=caption)
