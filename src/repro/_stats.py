"""Small exact-statistics helpers used by experiment reports.

Reports compute percentiles over the *recorded* response times exactly
(sorted order statistics with linear interpolation, numpy's default
method), as opposed to the approximate bucketed percentiles policies use on
their hot path.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence.

    Matches ``numpy.percentile(values, p)`` for ``p`` in [0, 100].
    Returns 0.0 for an empty sequence (reports render that as "no data").
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    rank = p / 100.0 * (n - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_values[low])
    fraction = rank - low
    return (float(sorted_values[low]) * (1.0 - fraction)
            + float(sorted_values[high]) * fraction)


def percentiles(values: Iterable[float],
                ps: Iterable[float]) -> Dict[float, float]:
    """Percentiles of an unsorted iterable, as a ``{p: value}`` dict."""
    ordered: List[float] = sorted(values)
    return {p: percentile(ordered, p) for p in ps}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 when empty."""
    if not values:
        return 0.0
    return sum(values) / len(values)
