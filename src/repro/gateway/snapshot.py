"""Cross-process histogram publication over ``multiprocessing.shared_memory``.

The gateway parent owns the latest histogram snapshots (it sees every
completion); worker processes need them to decide admissions.  The
:class:`SnapshotBoard` is the bridge: one shared-memory segment holding a
generation counter and a fixed array of slots, each slot one named
:class:`~repro.core.histogram.HistogramSnapshot` in its dense binary wire
form (:meth:`~repro.core.histogram.HistogramSnapshot.to_bytes` — the
existing bucket-count arrays plus the three layout floats the bucket edges
derive from).

Concurrency is a classic single-writer seqlock.  The writer bumps the
generation to an odd value, rewrites the slots, then bumps it to the next
even value; a reader snapshots the generation, copies the payload, and
re-reads the generation — an odd value or a mismatch means a concurrent
write, so it retries.  No locks cross the process boundary, readers never
block the writer, and a crashed reader cannot wedge publication.

The dual-buffer publish *epoch* rides inside each serialized snapshot.
Workers preload the decoded snapshots with ``adopt_epochs=True``
(:meth:`repro.core.bouncer.BouncerPolicy.preload_snapshots`), so every
process observes the same epoch for the same published view — the epoch
is the invalidation token for all the estimator caches, exactly as it is
in-process (docs/performance.md), and the board's generation is just the
"something changed" doorbell.
"""

from __future__ import annotations

import struct
import time
from typing import Dict, Mapping, NamedTuple, Optional

from multiprocessing import shared_memory

from ..core.histogram import (BucketLayout, DEFAULT_LAYOUT,
                              HistogramSnapshot, SNAPSHOT_WIRE_HEADER)
from ..exceptions import ConfigurationError

#: Slot name reserved for the general (all-types) histogram.  Matches the
#: key Bouncer itself uses internally, and cannot collide with a query
#: type (types are routed as socket-protocol tokens and never start with
#: a NUL byte).
GENERAL_SLOT = "\x00general"

#: Default number of snapshot slots (distinct query types + the general
#: histogram) a board holds.
BOARD_DEFAULT_SLOTS = 32

#: Longest slot name accepted, in UTF-8 bytes.
MAX_NAME_BYTES = 64

#: magic, format version, slot count, slot payload capacity.
_HEADER = struct.Struct("<4sHHQ")
_MAGIC = b"RPRB"
_VERSION = 1
#: Byte offsets: the seqlock generation (u64) sits right after the
#: header; the used-slot count (u32) after it; slots start 8-aligned.
_GEN_OFF = _HEADER.size
_USED_OFF = _GEN_OFF + 8
_SLOTS_OFF = _USED_OFF + 8
_GEN = struct.Struct("<Q")
_USED = struct.Struct("<I")
_NAME_LEN = struct.Struct("<H")

#: Reader retry budget before giving up on a torn view.  Each retry
#: yields the CPU, so even a single-core host lets the writer finish.
_READ_RETRIES = 10_000

#: Pure-yield retries before a torn reader starts sleeping: the writer's
#: critical section is a few microseconds of memcpy, so the common case
#: resolves within a couple of scheduler yields.
_SPIN_RETRIES = 64

#: Upper bound on a single reader backoff sleep, in seconds (100 us) —
#: long enough for a descheduled writer to finish on a loaded single
#: core, short enough to stay invisible next to the decide RTT.
_MAX_BACKOFF = 100e-6


def _reader_backoff(attempt: int) -> None:
    """Yield the CPU, escalating to bounded exponential sleeps.

    The seqlock reader races a writer in *another process*, so the
    injected clock cannot help here: making the writer progress means
    really giving up the core.  The first :data:`_SPIN_RETRIES` attempts
    stay pure ``sched_yield``; after that the sleep doubles from 1 us up
    to :data:`_MAX_BACKOFF` so a reader pinned against a descheduled
    writer converges instead of burning its whole retry budget hot.
    """
    if attempt < _SPIN_RETRIES:
        # repro: allow=no-wall-clock (sleep(0) is sched_yield, not timed)
        time.sleep(0)
        return
    delay = min(_MAX_BACKOFF, 1e-6 * (1 << min(attempt - _SPIN_RETRIES, 7)))
    # The writer lives in another process, so no injected clock can order
    # this wait; the bound keeps the worst case invisible vs decide RTT.
    # repro: allow=no-wall-clock (bounded cross-process seqlock backoff)
    time.sleep(delay)


class BoardView(NamedTuple):
    """One coherent read of the board."""

    generation: int
    types: Dict[str, HistogramSnapshot]
    general: Optional[HistogramSnapshot]


def _slot_size(layout: BucketLayout) -> int:
    """Payload capacity one slot needs for one named snapshot."""
    snapshot_bytes = SNAPSHOT_WIRE_HEADER.size + layout.num_buckets * 8
    return _NAME_LEN.size + MAX_NAME_BYTES + snapshot_bytes


class SnapshotBoard:
    """Seqlock-guarded snapshot slots in one shared-memory segment.

    Build the writer side with :meth:`create` (parent process); attach
    readers with :meth:`attach` (workers, by name).  Exactly one process
    may call :meth:`publish`.
    """

    def __init__(self, shm: "shared_memory.SharedMemory", slots: int,
                 slot_size: int, owner: bool) -> None:
        self._shm = shm
        self._slots = slots
        self._slot_size = slot_size
        self._owner = owner
        self._layout: Optional[BucketLayout] = None
        self._closed = False

    # -- construction ----------------------------------------------------
    @classmethod
    def create(cls, slots: int = BOARD_DEFAULT_SLOTS,
               layout: Optional[BucketLayout] = None,
               name: Optional[str] = None) -> "SnapshotBoard":
        """Allocate a fresh board (writer side; call :meth:`unlink` last)."""
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        layout = layout or DEFAULT_LAYOUT
        slot_size = _slot_size(layout)
        size = _SLOTS_OFF + slots * slot_size
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        try:
            # The generation word goes last so a crash mid-init can never
            # leave a valid header next to a stale even generation.
            # repro: allow=seqlock-discipline (pre-attach init: the name escapes only on return, so no reader can race this)
            _HEADER.pack_into(shm.buf, 0, _MAGIC, _VERSION, slots,
                              slot_size)
            _USED.pack_into(shm.buf, _USED_OFF, 0)
            _GEN.pack_into(shm.buf, _GEN_OFF, 0)
        except BaseException:
            # The create-failure path must not leak the segment: without
            # this, a crash here orphans the mapping in /dev/shm until
            # reboot and nobody holds a handle to unlink it.
            shm.close()
            shm.unlink()
            raise
        board = cls(shm, slots, slot_size, owner=True)
        board._layout = layout
        return board

    @classmethod
    def attach(cls, name: str) -> "SnapshotBoard":
        """Open an existing board by segment name (reader side)."""
        try:
            shm = shared_memory.SharedMemory(  # type: ignore[call-arg]
                name=name, track=False)
        except TypeError:
            # Python < 3.13 has no track flag; attaching registers the
            # segment with the resource tracker a second time.  The
            # tracker's cache is a set, so the duplicate is harmless —
            # the creator's unlink clears the single entry — and
            # unregistering here would instead *remove* the creator's
            # registration (the tracker process is shared), breaking its
            # unlink-time bookkeeping.
            shm = shared_memory.SharedMemory(name=name)
        # repro: allow=seqlock-discipline (header words are written once before the name escapes and are immutable afterwards)
        magic, version, slots, slot_size = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC or version != _VERSION:
            shm.close()
            raise ConfigurationError(
                f"segment {name!r} is not a snapshot board")
        return cls(shm, slots, slot_size, owner=False)

    @property
    def name(self) -> str:
        """Segment name readers attach by."""
        return self._shm.name

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def generation(self) -> int:
        """Latest stable generation (0 = nothing published yet)."""
        gen = _GEN.unpack_from(self._shm.buf, _GEN_OFF)[0]
        return int(gen - 1 if gen % 2 else gen)

    # -- writer ----------------------------------------------------------
    def publish(self, types: Mapping[str, HistogramSnapshot],
                general: Optional[HistogramSnapshot] = None) -> int:
        """Replace the board's contents; returns the new generation.

        Single writer only.  The full set of snapshots is written each
        time — the board is a bulletin, not a journal; readers that skip
        generations simply adopt the latest view (and the decision logs
        record which generations a worker actually applied).
        """
        if not self._owner:
            raise ConfigurationError("only the creating process publishes")
        entries = dict(types)
        if general is not None:
            entries[GENERAL_SLOT] = general
        if len(entries) > self._slots:
            raise ConfigurationError(
                f"{len(entries)} snapshots exceed the board's "
                f"{self._slots} slots")
        # Serialize and validate everything *before* opening the odd
        # window: a ConfigurationError mid-copy would otherwise wedge the
        # board forever-odd and spin every reader to exhaustion.
        records = []
        for slot_name, snapshot in entries.items():
            name_bytes = slot_name.encode("utf-8")
            if len(name_bytes) > MAX_NAME_BYTES:
                raise ConfigurationError(
                    f"slot name {slot_name!r} exceeds "
                    f"{MAX_NAME_BYTES} bytes")
            payload = snapshot.to_bytes()
            record_len = _NAME_LEN.size + len(name_bytes) + len(payload)
            if record_len > self._slot_size:
                raise ConfigurationError(
                    "snapshot layout larger than the board's slot size")
            records.append((name_bytes, payload))
        buf = self._shm.buf
        gen = _GEN.unpack_from(buf, _GEN_OFF)[0]
        _GEN.pack_into(buf, _GEN_OFF, gen + 1)        # odd: write in progress
        offset = _SLOTS_OFF
        for name_bytes, payload in records:
            _NAME_LEN.pack_into(buf, offset, len(name_bytes))
            start = offset + _NAME_LEN.size
            buf[start:start + len(name_bytes)] = name_bytes
            start += len(name_bytes)
            buf[start:start + len(payload)] = payload
            offset += self._slot_size
        _USED.pack_into(buf, _USED_OFF, len(records))
        _GEN.pack_into(buf, _GEN_OFF, gen + 2)        # even: stable
        return int(gen + 2)

    # -- reader ----------------------------------------------------------
    def read(self) -> Optional[BoardView]:
        """One coherent view, or ``None`` when nothing is published yet."""
        buf = self._shm.buf
        for attempt in range(_READ_RETRIES):
            before = _GEN.unpack_from(buf, _GEN_OFF)[0]
            if before == 0:
                return None
            if before % 2:             # writer mid-publish; back off, retry
                _reader_backoff(attempt)
                continue
            used = _USED.unpack_from(buf, _USED_OFF)[0]
            payload = bytes(buf[_SLOTS_OFF:
                                _SLOTS_OFF + used * self._slot_size])
            after = _GEN.unpack_from(buf, _GEN_OFF)[0]
            if after != before:
                _reader_backoff(attempt)
                continue
            return self._decode(int(before), int(used), payload)
        raise RuntimeError("snapshot board read kept tearing; "
                           "is more than one process publishing?")

    def _decode(self, generation: int, used: int,
                payload: bytes) -> BoardView:
        types: Dict[str, HistogramSnapshot] = {}
        general: Optional[HistogramSnapshot] = None
        for slot in range(used):
            offset = slot * self._slot_size
            name_len = _NAME_LEN.unpack_from(payload, offset)[0]
            start = offset + _NAME_LEN.size
            slot_name = payload[start:start + name_len].decode("utf-8")
            snapshot, _ = HistogramSnapshot.from_bytes(
                payload, start + name_len, layout=self._layout)
            # Cache the decoded layout so every later snapshot shares one
            # object (preload compatibility checks become float compares
            # on identical values).
            self._layout = snapshot._layout
            if slot_name == GENERAL_SLOT:
                general = snapshot
            else:
                types[slot_name] = snapshot
        return BoardView(generation, types, general)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (leave the segment alive)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (writer side, after workers detached)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SnapshotBoard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
