"""Consistent-hash routing of query types onto gateway shards.

Every router in every process must map a query type to the same shard, so
the hash must be deterministic across interpreters — Python's builtin
``hash`` is salted per process and cannot be used.  The ring hashes with
BLAKE2b instead, places ``replicas`` virtual nodes per shard, and routes a
type to the first virtual node at or clockwise of the type's hash.

Consistent hashing (rather than ``hash(qtype) % shards``) keeps the
assignment stable under resizing: growing the fleet from N to N+1 shards
moves only ~1/(N+1) of the types, so the moved types' policies restart
cold (paper Appendix A) while every other shard keeps its warmed
histograms and memoized estimator state.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from ..exceptions import ConfigurationError

#: Virtual nodes per shard.  64 keeps the max/mean type-count imbalance
#: under ~1.3x for small fleets while the ring stays tiny (shards x 64
#: 8-byte points).
DEFAULT_REPLICAS = 64


def _point(key: str) -> int:
    """Deterministic 64-bit ring position for ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps query types onto ``shards`` gateway workers, consistently.

    The router is pure computation over (shards, replicas): two routers
    built with the same parameters agree in every process, which is what
    lets load generators preformat per-shard frames without asking the
    gateway where a type lives.
    """

    def __init__(self, shards: int,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_point(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, qtype: str) -> int:
        """Shard owning ``qtype`` (first virtual node clockwise)."""
        idx = bisect_right(self._points, _point(qtype))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def assignment(self, qtypes: Sequence[str]) -> Dict[int, List[str]]:
        """Group ``qtypes`` by owning shard (order preserved per shard)."""
        grouped: Dict[int, List[str]] = {}
        for qtype in qtypes:
            grouped.setdefault(self.shard_for(qtype), []).append(qtype)
        return grouped
