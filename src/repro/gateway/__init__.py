"""Multi-process admission gateway (sharded Bouncer front end).

The threaded :class:`~repro.runtime.AdmissionServer` tops out at one GIL;
this package scales admission *decisions* across worker processes.  Each
worker owns a consistent-hash shard of query types
(:class:`~repro.gateway.hashring.ShardRouter`) and runs its own
:class:`~repro.core.bouncer.BouncerPolicy` against histogram snapshots the
parent publishes cross-process through a shared-memory board
(:class:`~repro.gateway.snapshot.SnapshotBoard`), with the dual-buffer
publish epoch carried across the process boundary as the invalidation
token.  :class:`~repro.gateway.server.GatewayServer` owns the worker
fleet and the board; :mod:`repro.gateway.loadgen` drives it open-loop
from generator processes.  See ``docs/gateway.md``.
"""

from .hashring import ShardRouter
from .loadgen import LoadgenReport, run_open_loop
from .server import GatewayServer, PolicySpec, WorkerStats
from .snapshot import BOARD_DEFAULT_SLOTS, SnapshotBoard

__all__ = [
    "BOARD_DEFAULT_SLOTS",
    "GatewayServer",
    "LoadgenReport",
    "PolicySpec",
    "ShardRouter",
    "SnapshotBoard",
    "WorkerStats",
    "run_open_loop",
]
