"""The gateway parent: worker fleet, snapshot board, and client API.

:class:`GatewayServer` is the multi-process sibling of
:class:`~repro.runtime.AdmissionServer`: where the threaded server scales
query *execution* across worker threads behind one policy, the gateway
scales admission *decisions* across worker processes, each owning a
consistent-hash shard of query types.  The division of labour:

* the parent creates the :class:`~repro.gateway.snapshot.SnapshotBoard`
  and is its single writer (:meth:`GatewayServer.publish`);
* each worker process (:mod:`repro.gateway.worker`) serves decisions on
  a unix socket, adopting board generations between frames;
* clients route with the same :class:`~repro.gateway.hashring
  .ShardRouter` the parent uses — in-process via :meth:`decide_many`, or
  from generator processes speaking the socket protocol directly
  (:mod:`repro.gateway.loadgen`).

Shutdown mirrors the threaded server's drain-then-abandon contract: each
worker is asked to flush its decision log and exit (``x``), given
``timeout`` to comply, then terminated; the board is unlinked last.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.clock import MonotonicClock
from ..core.histogram import BucketLayout, HistogramSnapshot
from ..exceptions import ConfigurationError, ShuttingDownError
from ..telemetry.registry import MetricsRegistry
from ..telemetry.shards import record_shard_stats
from .hashring import ShardRouter
from .snapshot import BOARD_DEFAULT_SLOTS, SnapshotBoard
from .worker import PolicySpec, WorkerSpec, worker_main


@dataclass(frozen=True)
class WorkerStats:
    """One worker's counter snapshot, as collected by the parent."""

    shard: int
    decisions: int
    accepted: int
    rejected: int
    policy_errors: int
    generation: int
    snapshot_syncs: int
    per_type: Mapping[str, Mapping[str, int]]


class GatewayServer:
    """N admission worker processes behind a consistent-hash router.

    Parameters
    ----------
    policy:
        The :class:`~repro.gateway.worker.PolicySpec` every worker builds
        its Bouncer from (shards differ by traffic, not configuration).
    shards:
        Worker-process count (>= 1).
    board_slots:
        Snapshot-board capacity (distinct query types + general).
    layout:
        Histogram bucket layout the board sizes its slots for.
    runtime_dir:
        Directory for sockets and decision logs; a private temp dir when
        omitted.
    registry:
        Optional metrics registry; :meth:`collect_stats` lands per-shard
        gauges in it (see :mod:`repro.telemetry.shards`).
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) gives every
        worker a clean interpreter on all platforms.
    """

    def __init__(self, policy: PolicySpec, shards: int = 4,
                 board_slots: int = BOARD_DEFAULT_SLOTS,
                 layout: Optional[BucketLayout] = None,
                 runtime_dir: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None,
                 start_method: str = "spawn") -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.policy_spec = policy
        self.shards = int(shards)
        self.router = ShardRouter(shards)
        self.registry = registry
        self._board_slots = board_slots
        self._layout = layout
        self._runtime_dir = runtime_dir
        self._ctx = multiprocessing.get_context(start_method)
        self._clock = MonotonicClock()
        self._board: Optional[SnapshotBoard] = None
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: Dict[int, socket.socket] = {}
        self._files: Dict[int, object] = {}
        self._io_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._owns_dir = False
        #: shard -> decision-log path, readable after :meth:`stop`.
        self.decision_log_paths: Dict[int, str] = {}

    # -- lifecycle -------------------------------------------------------
    def start(self, timeout: float = 60.0) -> None:
        """Create the board, spawn the fleet, wait for every socket."""
        if self._started:
            return
        if self._runtime_dir is None:
            self._runtime_dir = tempfile.mkdtemp(prefix="repro-gw-")
            self._owns_dir = True
        self._board = SnapshotBoard.create(slots=self._board_slots,
                                           layout=self._layout)
        for shard in range(self.shards):
            spec = WorkerSpec(
                shard=shard,
                socket_path=os.path.join(self._runtime_dir,
                                         f"shard-{shard}.sock"),
                log_path=os.path.join(self._runtime_dir,
                                      f"decisions-{shard}.log"),
                board_name=self._board.name,
                policy=self.policy_spec)
            self.decision_log_paths[shard] = spec.log_path
            proc = self._ctx.Process(target=worker_main, args=(spec,),
                                     name=f"repro-gw-{shard}", daemon=True)
            proc.start()
            self._procs.append(proc)
        deadline = self._clock.now() + timeout
        for shard in range(self.shards):
            self._conns[shard] = self._await_socket(shard, deadline)
            self._files[shard] = self._conns[shard].makefile("rwb")
        self._started = True

    def _await_socket(self, shard: int, deadline: float) -> socket.socket:
        path = os.path.join(self._runtime_dir or "",
                            f"shard-{shard}.sock")
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(path)
                return sock
            except OSError:
                sock.close()
                if not self._procs[shard].is_alive():
                    raise ConfigurationError(
                        f"gateway worker {shard} died during startup "
                        f"(exit code {self._procs[shard].exitcode})")
                if self._clock.now() > deadline:
                    raise ConfigurationError(
                        f"gateway worker {shard} did not come up in time")
                self._clock.sleep(0.02)

    def socket_paths(self) -> Dict[int, str]:
        """shard -> unix-socket path (load generators connect directly)."""
        return {shard: os.path.join(self._runtime_dir or "",
                                    f"shard-{shard}.sock")
                for shard in range(self.shards)}

    # -- snapshot publication -------------------------------------------
    def publish(self, types: Mapping[str, HistogramSnapshot],
                general: Optional[HistogramSnapshot] = None) -> int:
        """Publish histogram snapshots to every worker; returns the new
        board generation.  Single-threaded with respect to itself."""
        if self._board is None:
            raise ShuttingDownError("gateway is not running")
        return self._board.publish(types, general)

    @property
    def generation(self) -> int:
        """Latest published board generation (0 before any publish)."""
        return self._board.generation if self._board is not None else 0

    # -- client API ------------------------------------------------------
    def decide_many(self, qtypes: Sequence[str]) -> List[bool]:
        """Route one burst through the owning shards; results in order."""
        if not self._started or self._stopped:
            raise ShuttingDownError("gateway is not accepting queries")
        if not qtypes:
            return []
        grouped = self.router.assignment(qtypes)
        bits_by_shard: Dict[int, str] = {}
        with self._io_lock:
            for shard, owned in grouped.items():
                bits_by_shard[shard] = self._request_decisions(shard, owned)
        cursors = {shard: 0 for shard in grouped}
        out: List[bool] = []
        for qtype in qtypes:
            shard = self.router.shard_for(qtype)
            index = cursors[shard]
            cursors[shard] = index + 1
            out.append(bits_by_shard[shard][index] == "1")
        return out

    def _request_decisions(self, shard: int, qtypes: Sequence[str]) -> str:
        stream = self._files[shard]
        frame = ("d 0 " + ",".join(qtypes) + "\n").encode("ascii")
        stream.write(frame)                      # type: ignore[attr-defined]
        stream.flush()                           # type: ignore[attr-defined]
        line = stream.readline()                 # type: ignore[attr-defined]
        if not line.startswith(b"r "):
            raise ShuttingDownError(
                f"gateway worker {shard} returned a bad frame: {line!r}")
        return line.rsplit(b" ", 1)[1].rstrip(b"\n").decode("ascii")

    def collect_stats(self) -> Dict[int, WorkerStats]:
        """Pull counters from every worker over the control channel.

        Also lands the per-shard gauges in :attr:`registry` when one was
        provided (see :mod:`repro.telemetry.shards`).
        """
        if not self._started or self._stopped:
            raise ShuttingDownError("gateway is not running")
        raw: Dict[int, Dict[str, object]] = {}
        with self._io_lock:
            for shard in range(self.shards):
                stream = self._files[shard]
                stream.write(b"s\n")             # type: ignore[attr-defined]
                stream.flush()                   # type: ignore[attr-defined]
                line = stream.readline()         # type: ignore[attr-defined]
                if not line.startswith(b"S "):
                    raise ShuttingDownError(
                        f"gateway worker {shard} returned a bad stats "
                        f"frame: {line!r}")
                raw[shard] = json.loads(line[2:].decode("utf-8"))
        if self.registry is not None:
            record_shard_stats(self.registry, raw)
        return {shard: WorkerStats(
            shard=int(stats.get("shard", shard)),
            decisions=int(stats["decisions"]),      # type: ignore[arg-type]
            accepted=int(stats["accepted"]),        # type: ignore[arg-type]
            rejected=int(stats["rejected"]),        # type: ignore[arg-type]
            policy_errors=int(
                stats["policy_errors"]),            # type: ignore[arg-type]
            generation=int(stats["generation"]),    # type: ignore[arg-type]
            snapshot_syncs=int(
                stats["snapshot_syncs"]),           # type: ignore[arg-type]
            per_type=stats.get("per_type", {}),     # type: ignore[arg-type]
        ) for shard, stats in raw.items()}

    # -- shutdown --------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Flush logs, stop the fleet, destroy the board (idempotent).

        Worker teardown mirrors ``AdmissionServer.stop``: ask nicely
        (``x`` — flush the decision log and exit), wait out ``timeout``,
        then terminate whoever is left.  Logs of terminated workers may
        be missing; callers that need them should size ``timeout``
        generously.
        """
        if self._stopped:
            return
        self._stopped = True
        with self._io_lock:
            for shard in range(self.shards):
                stream = self._files.get(shard)
                if stream is None:
                    continue
                try:
                    stream.write(b"x\n")         # type: ignore[attr-defined]
                    stream.flush()               # type: ignore[attr-defined]
                    stream.readline()            # type: ignore[attr-defined]
                except OSError:
                    pass                 # worker already gone; join below
        deadline = self._clock.now() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - self._clock.now()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for shard, stream in self._files.items():
            try:
                stream.close()                   # type: ignore[attr-defined]
            except OSError:  # pragma: no cover - best-effort close
                pass
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
        self._files.clear()
        self._conns.clear()
        self._procs.clear()
        if self._board is not None:
            self._board.unlink()
            self._board = None
        self._started = False

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
