"""Open-loop multi-process load generation against the gateway.

Open loop means arrivals are paced by the wall clock, not by responses:
each generator process precomputes its entire arrival schedule (qtype
draws from a seeded :class:`random.Random` and the per-shard frames they
route into), then walks the schedule sleeping to each tick's absolute
send time and writing that tick's frames regardless of what has come
back.  Responses are drained concurrently by one reader thread per shard
connection, so a lagging worker backs up the kernel socket buffer rather
than the arrival process — the overload keeps arriving, which is the
whole point of stress-testing an admission tier (cf. the paper's open
§5.3 workloads, and the closed-loop in-process
:class:`repro.runtime.LoadGenerator` it complements).

Frames are preformatted bytes: at 100k+ QPS on a shared core, formatting
inside the pacing loop would steal the budget the workers need.
"""

from __future__ import annotations

import multiprocessing
import random
import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.clock import MonotonicClock
from ..exceptions import ConfigurationError
from .hashring import ShardRouter

#: Default queries carried by one tick of one generator.  Large ticks
#: amortize the frame and syscall overhead exactly like ``decide_many``
#: batches amortize the policy's bookkeeping; at the default 100k+ QPS
#: targets a tick is a few milliseconds of traffic.
DEFAULT_TICK_QUERIES = 1024


@dataclass(frozen=True)
class _GeneratorSpec:
    """One generator process's share of the plan (picklable)."""

    generator: int
    seed: int
    socket_paths: Mapping[int, str]
    shards: int
    qtypes: Tuple[str, ...]
    weights: Tuple[float, ...]
    rate: float                  # this process's arrival rate, QPS
    duration: float
    tick_queries: int
    drain_timeout: float


@dataclass
class LoadgenReport:
    """Aggregated outcome of one open-loop run."""

    sent: int = 0
    answered: int = 0
    accepted: int = 0
    elapsed: float = 0.0          # max over generators, first send->last reply
    offered_qps: float = 0.0
    achieved_qps: float = 0.0
    generators: int = 0
    per_shard_sent: Dict[int, int] = field(default_factory=dict)
    per_shard_answered: Dict[int, int] = field(default_factory=dict)

    @property
    def accepted_ratio(self) -> float:
        return self.accepted / self.answered if self.answered else 0.0


def _build_schedule(spec: _GeneratorSpec,
                    router: ShardRouter
                    ) -> Tuple[List[List[Tuple[int, bytes, int]]], Dict[int, int]]:
    """Precompute every tick's per-shard frames.

    Returns (ticks, expected-frame count per shard); each tick is a list
    of ``(shard, frame-bytes, query-count)`` entries.
    """
    rng = random.Random(spec.seed)
    total = max(1, int(spec.rate * spec.duration))
    ticks: List[List[Tuple[int, bytes, int]]] = []
    expected: Dict[int, int] = {shard: 0 for shard in spec.socket_paths}
    seq = 0
    produced = 0
    while produced < total:
        count = min(spec.tick_queries, total - produced)
        produced += count
        drawn = rng.choices(spec.qtypes, weights=spec.weights, k=count)
        frames: List[Tuple[int, bytes, int]] = []
        for shard, owned in sorted(router.assignment(drawn).items()):
            frame = ("d %d %s\n" % (seq, ",".join(owned))).encode("ascii")
            frames.append((shard, frame, len(owned)))
            expected[shard] += 1
            seq += 1
        ticks.append(frames)
    return ticks, expected


def _reader(stream: "socket.SocketIO", expected_frames: int,
            tally: List[float], clock: MonotonicClock) -> None:
    """Drain one shard connection, counting decisions and accepts.

    ``tally`` is ``[answered, accepted, last_reply_instant]`` — plain
    list slots because the thread outlives the function scope.
    """
    received = 0
    while received < expected_frames:
        line = stream.readline()
        if not line:
            break
        if not line.startswith(b"r "):
            continue
        bits = line.rsplit(b" ", 1)[1].rstrip(b"\n")
        received += 1
        tally[0] += len(bits)
        tally[1] += bits.count(b"1")
        tally[2] = clock.now()


def _generator_main(spec: _GeneratorSpec,
                    out: "multiprocessing.queues.SimpleQueue") -> None:
    """Generator process body: connect, pace, drain, report."""
    clock = MonotonicClock()
    router = ShardRouter(spec.shards)
    ticks, expected = _build_schedule(spec, router)
    conns: Dict[int, socket.socket] = {}
    streams: Dict[int, "socket.SocketIO"] = {}
    tallies: Dict[int, List[float]] = {}
    threads: List[threading.Thread] = []
    try:
        for shard, path in spec.socket_paths.items():
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.connect(path)
            conns[shard] = conn
            streams[shard] = conn.makefile("rb")
            tallies[shard] = [0.0, 0.0, 0.0]
        for shard in conns:
            thread = threading.Thread(
                target=_reader,
                args=(streams[shard], expected[shard], tallies[shard],
                      clock),
                name=f"gw-loadgen-reader-{shard}", daemon=True)
            thread.start()
            threads.append(thread)
        tick_interval = (spec.tick_queries / spec.rate
                         if spec.rate > 0 else 0.0)
        start = clock.now()
        sent = 0
        per_shard_sent: Dict[int, int] = {shard: 0 for shard in conns}
        for index, frames in enumerate(ticks):
            target = start + index * tick_interval
            lag = target - clock.now()
            if lag > 0:
                clock.sleep(lag)
            for shard, frame, count in frames:
                conns[shard].sendall(frame)
                sent += count
                per_shard_sent[shard] += count
        deadline = clock.now() + spec.drain_timeout
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - clock.now()))
        answered = int(sum(tally[0] for tally in tallies.values()))
        accepted = int(sum(tally[1] for tally in tallies.values()))
        last_reply = max((tally[2] for tally in tallies.values()
                          if tally[2]), default=clock.now())
        out.put({
            "generator": spec.generator,
            "sent": sent,
            "answered": answered,
            "accepted": accepted,
            "elapsed": max(last_reply - start, 1e-9),
            "per_shard_sent": per_shard_sent,
            "per_shard_answered": {shard: int(tally[0])
                                   for shard, tally in tallies.items()},
        })
    finally:
        for stream in streams.values():
            try:
                stream.close()
            except OSError:
                pass
        for conn in conns.values():
            try:
                conn.close()
            except OSError:
                pass


def run_open_loop(socket_paths: Mapping[int, str], shards: int,
                  qtypes: Sequence[str],
                  weights: Optional[Sequence[float]] = None,
                  rate: float = 100_000.0, duration: float = 2.0,
                  processes: int = 2,
                  tick_queries: int = DEFAULT_TICK_QUERIES,
                  seed: int = 0, drain_timeout: float = 30.0,
                  start_method: str = "spawn") -> LoadgenReport:
    """Drive the gateway open-loop from ``processes`` generators.

    ``rate`` is the *aggregate* offered QPS, split evenly; each generator
    draws its own qtype stream from ``random.Random(seed + generator)``
    so the run is a pure function of its seed.  Returns the merged
    report; ``achieved_qps`` is total answered decisions over the
    slowest generator's first-send-to-last-reply window.
    """
    if processes < 1:
        raise ConfigurationError(
            f"processes must be >= 1, got {processes}")
    if not qtypes:
        raise ConfigurationError("qtypes must be non-empty")
    weights_tuple = (tuple(float(w) for w in weights)
                     if weights is not None
                     else tuple(1.0 for _ in qtypes))
    if len(weights_tuple) != len(qtypes):
        raise ConfigurationError("weights must match qtypes")
    ctx = multiprocessing.get_context(start_method)
    out = ctx.SimpleQueue()
    procs = []
    for generator in range(processes):
        spec = _GeneratorSpec(
            generator=generator, seed=seed + generator,
            socket_paths=dict(socket_paths), shards=shards,
            qtypes=tuple(qtypes), weights=weights_tuple,
            rate=rate / processes, duration=duration,
            tick_queries=tick_queries, drain_timeout=drain_timeout)
        proc = ctx.Process(target=_generator_main, args=(spec, out),
                           name=f"repro-gw-gen-{generator}", daemon=True)
        proc.start()
        procs.append(proc)
    report = LoadgenReport(generators=processes,
                           offered_qps=float(rate))
    reports = [out.get() for _ in procs]
    for proc in procs:
        proc.join(timeout=drain_timeout)
        if proc.is_alive():  # pragma: no cover - wedged generator
            proc.terminate()
            proc.join(timeout=5.0)
    for item in reports:
        report.sent += int(item["sent"])
        report.answered += int(item["answered"])
        report.accepted += int(item["accepted"])
        report.elapsed = max(report.elapsed, float(item["elapsed"]))
        for shard, count in item["per_shard_sent"].items():
            report.per_shard_sent[int(shard)] = (
                report.per_shard_sent.get(int(shard), 0) + int(count))
        for shard, count in item["per_shard_answered"].items():
            report.per_shard_answered[int(shard)] = (
                report.per_shard_answered.get(int(shard), 0) + int(count))
    if report.elapsed > 0:
        report.achieved_qps = report.answered / report.elapsed
    return report
