"""Gateway worker process: one shard's Bouncer behind a unix socket.

Each worker owns the consistent-hash shard of query types routed to it and
runs a private :class:`~repro.core.bouncer.BouncerPolicy` on a *frozen*
:class:`~repro.core.clock.ManualClock`.  Freezing the clock removes every
time-driven state change (dual-buffer swaps, bootstrap publishes) from the
worker, so its policy state advances only through the two channels the
decision log records: snapshot-board generations applied and decisions
made.  That is what makes a worker's admission stream *bit-identical* to a
single-process replay of its log — the acceptance check the gateway bench
performs (``repro gateway-bench``).

The transport is a line protocol over a unix stream socket, one asyncio
server per worker:

``d <seq> <qt1,qt2,...>``
    Decide a batch; replies ``r <seq> <bits>`` with one ``0``/``1`` per
    query, in order.
``s``
    Replies ``S <json>`` with the worker's counters (the per-shard stats
    the parent aggregates over this control channel).
``x``
    Flush the decision log to the spec'd path, reply ``X <decisions>``,
    and shut the worker down.

Fail-open parity with :class:`~repro.runtime.AdmissionServer` is
structural: batches run through the same
:func:`~repro.runtime.server.decide_many_fail_open` helper the threaded
server's ``submit_many`` uses, so a crashing policy admits exactly the
query that raised and bumps ``policy_errors`` in both hosts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import (BouncerConfig, BouncerPolicy, HostContext, LatencySLO,
                    ManualClock, QueueView, SLORegistry)
from ..core.types import AdmissionResult, Query
from ..runtime.server import decide_many_fail_open
from .snapshot import SnapshotBoard


@dataclass(frozen=True)
class PolicySpec:
    """Picklable recipe for one shard's policy.

    Primitives only: the spec crosses the ``spawn`` pickling boundary
    into every worker, and the bench replay rebuilds the *same* policy
    from it in-process.  SLO targets are ``{percentile: seconds}``
    mappings; ``queue_fill`` is the static simulated per-type queue depth
    each worker carries (the gateway is an admission tier — it decides
    and answers, it does not execute, so Eq. 2's occupancy term is a
    configured stand-in for the protected engine's queue).
    """

    default_slo: Mapping[float, float]
    type_slos: Mapping[str, Mapping[float, float]] = field(
        default_factory=dict)
    queue_fill: Mapping[str, int] = field(default_factory=dict)
    parallelism: int = 8
    min_samples: int = 1
    retain_min_samples: int = 1
    bootstrap_samples: int = 0
    fast_path: bool = True
    debug_check: bool = False

    def build(self) -> Tuple[BouncerPolicy, QueueView, ManualClock]:
        """Construct the policy (frozen clock, static queue fill)."""
        clock = ManualClock(0.0)
        queue = QueueView()
        ctx = HostContext(clock=clock, queue=queue,
                          parallelism=self.parallelism)
        registry = SLORegistry(
            default=LatencySLO(dict(self.default_slo)),
            per_type={qtype: LatencySLO(dict(targets))
                      for qtype, targets in self.type_slos.items()})
        policy = BouncerPolicy(ctx, BouncerConfig(
            slos=registry, min_samples=self.min_samples,
            retain_min_samples=self.retain_min_samples,
            bootstrap_samples=self.bootstrap_samples,
            fast_path=self.fast_path, debug_check=self.debug_check))
        # Deterministic fill order: sorted by type, then sequential.
        for qtype in sorted(self.queue_fill):
            for _ in range(int(self.queue_fill[qtype])):
                query = Query(qtype=qtype)
                query.enqueued_at = 0.0
                queue.on_enqueue(qtype)
                policy.on_enqueued(query)
        return policy, queue, clock


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, picklable for ``spawn``."""

    shard: int
    socket_path: str
    log_path: str
    board_name: Optional[str]
    policy: PolicySpec


class ShardEngine:
    """Transport-free core of a worker: policy + log + counters.

    Kept separate from the asyncio plumbing so tests (and the bench
    replay) can drive the exact decision/sync sequence in-process.
    """

    def __init__(self, spec: PolicySpec,
                 board: Optional[SnapshotBoard] = None,
                 shard: int = 0) -> None:
        self.policy, self.queue_view, self.clock = spec.build()
        self._board = board
        self.shard = shard
        self.generation = 0
        self.decisions = 0
        self.accepted = 0
        self.policy_errors = 0
        self.snapshot_syncs = 0
        self.per_type: Dict[str, List[int]] = {}   # qtype -> [decided, ok]
        # Append-only decision log, packed as UTF-8 bytes.  A list of str
        # held one ~50-byte object per decision; one bytearray holds the
        # same flushed text (each record appended with its newline) in a
        # single growing buffer — ~10x less memory per million decisions
        # and no join pass at flush time.
        self._log = bytearray()

    def _on_policy_error(self) -> None:
        self.policy_errors += 1

    def sync_board(self) -> None:
        """Adopt the board's latest generation, if it moved.

        The applied generation is appended to the decision log *before*
        any decision made under it, giving the replay the exact preload
        positions.  Epochs are adopted from the published snapshots, so
        estimator caches invalidate identically in every process.
        """
        if self._board is None:
            return
        view = self._board.read()
        if view is None or view.generation == self.generation:
            return
        self.generation = view.generation
        self.policy.preload_snapshots(view.types, view.general,
                                      adopt_epochs=True)
        self.snapshot_syncs += 1
        self._log += f"g {view.generation}\n".encode("utf-8")

    def decide_batch(self, qtypes: Sequence[str]) -> str:
        """Decide one frame; returns the accept bits as a 0/1 string."""
        self.sync_board()
        queries = [Query(qtype=qtype) for qtype in qtypes]
        bits: List[str] = []
        log = self._log
        per_type = self.per_type

        def apply(query: Query, result: AdmissionResult) -> None:
            bit = "1" if result.accepted else "0"
            bits.append(bit)
            log.extend(f"d {query.qtype} {bit}\n".encode("utf-8"))
            tally = per_type.get(query.qtype)
            if tally is None:
                tally = per_type.setdefault(query.qtype, [0, 0])
            tally[0] += 1
            if result.accepted:
                tally[1] += 1

        decide_many_fail_open(self.policy, queries, apply,
                              self._on_policy_error)
        self.decisions += len(bits)
        self.accepted += sum(1 for bit in bits if bit == "1")
        return "".join(bits)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot shipped over the control channel."""
        return {
            "shard": self.shard,
            "decisions": self.decisions,
            "accepted": self.accepted,
            "rejected": self.decisions - self.accepted,
            "policy_errors": self.policy_errors,
            "generation": self.generation,
            "snapshot_syncs": self.snapshot_syncs,
            "per_type": {qtype: {"decided": tally[0], "accepted": tally[1]}
                         for qtype, tally in sorted(self.per_type.items())},
        }

    def flush_log(self, path: str) -> int:
        """Write the decision log; returns the number of decisions.

        The flushed text is byte-for-byte what the ``List[str]`` log
        produced (newline-terminated records, empty file for an empty
        log) — the replay reader is unchanged.
        """
        with open(path, "wb") as handle:
            handle.write(self._log)
        return self.decisions


async def _serve(spec: WorkerSpec) -> None:
    board = (SnapshotBoard.attach(spec.board_name)
             if spec.board_name else None)
    engine = ShardEngine(spec.policy, board, spec.shard)
    stopped = asyncio.Event()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                verb = line[:1]
                if verb == b"d":
                    gap = line.index(b" ", 2)
                    seq = line[2:gap]
                    qtypes = line[gap + 1:-1].decode("ascii").split(",")
                    bits = engine.decide_batch(qtypes)
                    writer.write(b"r %s %s\n"
                                 % (seq, bits.encode("ascii")))
                    await writer.drain()
                elif verb == b"s":
                    payload = json.dumps(engine.stats()).encode("utf-8")
                    writer.write(b"S %s\n" % payload)
                    await writer.drain()
                elif verb == b"x":
                    count = engine.flush_log(spec.log_path)
                    writer.write(b"X %d\n" % count)
                    await writer.drain()
                    stopped.set()
                    break
                # Unknown verbs are ignored: a newer parent may speak a
                # superset and the worker must not wedge the connection.
        finally:
            writer.close()

    server = await asyncio.start_unix_server(handle, path=spec.socket_path)
    try:
        async with server:
            await stopped.wait()
    finally:
        if board is not None:
            board.close()


def worker_main(spec: WorkerSpec) -> None:
    """Process entry point (the ``spawn`` target)."""
    asyncio.run(_serve(spec))
