"""Operational metrics exposition for admission-controlled hosts.

A production deployment of an admission control policy lives or dies by
its observability: operators need per-type acceptance/rejection counters,
rejection causes, queue state, and the policy's current latency estimates
on a dashboard.  :func:`render_metrics` turns a policy + queue view into
the de-facto text exposition format (Prometheus-style ``name{labels}
value`` lines), with no dependency on any metrics library.

Usage::

    from repro.obs import render_metrics
    print(render_metrics(server.policy, server.queue_view))

Works with every policy in the library; Bouncer additionally exposes its
per-type percentile processing-time estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core.bouncer import BouncerPolicy
from .core.policy import AdmissionPolicy, QueueView
from .core.starvation import _StarvationWrapper

_PREFIX = "repro_admission"


def _escape(value: str) -> str:
    # Per the Prometheus text-format spec, label values must escape
    # backslash, double-quote, AND line-feed — a raw newline would split
    # the sample line and corrupt the whole scrape body.
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _line(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(f'{key}="{_escape(val)}"'
                         for key, val in sorted(labels.items()))
        return f"{_PREFIX}_{name}{{{inner}}} {value:g}"
    return f"{_PREFIX}_{name} {value:g}"


def render_metrics(policy: AdmissionPolicy,
                   queue: Optional[QueueView] = None, *,
                   policy_errors: Optional[int] = None,
                   expired_count: Optional[int] = None) -> str:
    """Render a policy's counters (and queue state) as exposition text.

    Stable output ordering (sorted by metric, then labels) so scrapes and
    tests can diff it.

    ``policy_errors`` (fail-open admissions after a policy exception) and
    ``expired_count`` (deadline drops) are host-side counters — pass them
    from the serving host (e.g. :class:`~repro.runtime.server
    .AdmissionServer`) to include them in the scrape; ``None`` omits them.
    """
    lines: List[str] = []
    lines.append(f"# HELP {_PREFIX}_accepted_total Queries admitted, "
                 f"by type.")
    lines.append(f"# TYPE {_PREFIX}_accepted_total counter")
    per_type = policy.stats.types()
    for qtype in sorted(per_type):
        counters = per_type[qtype]
        lines.append(_line("accepted_total", {"qtype": qtype},
                           counters.accepted))
    lines.append(f"# HELP {_PREFIX}_rejected_total Queries rejected, "
                 f"by type and reason.")
    lines.append(f"# TYPE {_PREFIX}_rejected_total counter")
    for qtype in sorted(per_type):
        counters = per_type[qtype]
        if counters.rejected and not counters.rejected_by_reason:
            lines.append(_line("rejected_total",
                               {"qtype": qtype, "reason": "unknown"},
                               counters.rejected))
            continue
        for reason in sorted(counters.rejected_by_reason,
                             key=lambda r: r.value):
            lines.append(_line(
                "rejected_total",
                {"qtype": qtype, "reason": reason.value},
                counters.rejected_by_reason[reason]))

    if policy_errors is not None:
        lines.append(f"# HELP {_PREFIX}_policy_errors_total Policy "
                     f"exceptions absorbed by the fail-open host.")
        lines.append(f"# TYPE {_PREFIX}_policy_errors_total counter")
        lines.append(_line("policy_errors_total", {}, policy_errors))
    if expired_count is not None:
        lines.append(f"# HELP {_PREFIX}_expired_total Admitted queries "
                     f"dropped in the queue past their deadline.")
        lines.append(f"# TYPE {_PREFIX}_expired_total counter")
        lines.append(_line("expired_total", {}, expired_count))

    if queue is not None:
        lines.append(f"# HELP {_PREFIX}_queue_length Queries waiting in "
                     f"the FIFO queue.")
        lines.append(f"# TYPE {_PREFIX}_queue_length gauge")
        lines.append(_line("queue_length", {}, queue.length()))
        occupancy = queue.occupancy()
        for qtype in sorted(occupancy):
            lines.append(_line("queue_occupancy", {"qtype": qtype},
                               occupancy[qtype]))

    # Unwrap starvation strategies to reach the Bouncer inside, and report
    # the wrapper's own override counter.
    inner = policy
    if isinstance(policy, _StarvationWrapper):
        lines.append(f"# HELP {_PREFIX}_overrides_total Rejections "
                     f"overridden by the starvation strategy.")
        lines.append(f"# TYPE {_PREFIX}_overrides_total counter")
        lines.append(_line("overrides_total", {}, policy.override_count))
        inner = policy.inner

    if isinstance(inner, BouncerPolicy):
        lines.append(f"# HELP {_PREFIX}_processing_seconds Published "
                     f"percentile processing times, by type.")
        lines.append(f"# TYPE {_PREFIX}_processing_seconds gauge")
        for qtype in sorted(per_type):
            snapshot = inner.processing_snapshot(qtype)
            if snapshot.is_empty:
                continue
            slo = inner.slos.for_type(qtype)
            for percentile in slo.percentiles:
                lines.append(_line(
                    "processing_seconds",
                    {"qtype": qtype, "quantile": f"{percentile:g}"},
                    snapshot.percentile(percentile)))
        lines.append(_line("estimated_wait_seconds", {},
                           inner.estimate_wait_mean()))
        fast = inner.fast_path_stats
        lines.append(f"# HELP {_PREFIX}_estimator_cache_hits Fast-path "
                     f"estimator cache hits (epoch-keyed snapshot stats).")
        lines.append(f"# TYPE {_PREFIX}_estimator_cache_hits counter")
        lines.append(_line("estimator_cache_hits", {}, fast.cache_hits))
        lines.append(f"# HELP {_PREFIX}_estimator_cache_misses Fast-path "
                     f"estimator cache misses (new publish epoch).")
        lines.append(f"# TYPE {_PREFIX}_estimator_cache_misses counter")
        lines.append(_line("estimator_cache_misses", {},
                           fast.cache_misses))
        lines.append(f"# HELP {_PREFIX}_eq2_recomputes Full recomputes of "
                     f"the incremental Eq. 2 term table.")
        lines.append(f"# TYPE {_PREFIX}_eq2_recomputes counter")
        lines.append(_line("eq2_recomputes", {}, fast.eq2_recomputes))
        lines.append(f"# HELP {_PREFIX}_batch_calls decide_many "
                     f"invocations (batched admission).")
        lines.append(f"# TYPE {_PREFIX}_batch_calls counter")
        lines.append(_line("batch_calls", {}, fast.batch_calls))
        lines.append(f"# HELP {_PREFIX}_batch_queries Queries decided "
                     f"through decide_many batches.")
        lines.append(f"# TYPE {_PREFIX}_batch_queries counter")
        lines.append(_line("batch_queries", {}, fast.batch_queries))

    return "\n".join(lines) + "\n"
