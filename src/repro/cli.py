"""Command-line interface: ``python -m repro <command>``.

Ten commands:

* ``simulate`` — run the §5.3 single-host study for one policy across one
  or more load factors and print the per-type outcome table.
* ``cluster``  — run the §5.4 broker/shard cluster model for one policy
  across one or more (scaled) rates.
* ``chaos``    — run a named fault plan against one policy on the cluster
  model and print SLO attainment under faults next to the fault-free
  baseline (see ``docs/fault_injection.md``).
* ``trace-report`` — summarize a JSONL decision trace (exported by the
  telemetry tracer or scraped from a host's ``/traces`` endpoint) into
  rejection-attribution and SLO-attainment tables.
* ``spans``    — collect lifecycle spans from a span-traced run (or load
  an exported span JSONL) and print the per-type critical-path breakdown;
  ``--chrome-out`` writes a Perfetto-loadable Chrome trace
  (see ``docs/observability.md``).
* ``calibrate-report`` — join each admission decision's Eq. 2/3/4
  estimates to the measured wait/response times and print per-type
  signed-error/APE/attainment tables plus the exclusive rejection
  attribution by Algorithm 1 term.
* ``bench``    — run the performance microbenchmarks (decisions/sec per
  policy including the Bouncer fast-path speedup, histogram and simulator
  throughput) plus the parallel experiment runner, emitting machine-
  readable JSON with an optional regression gate against a committed
  baseline (see ``docs/performance.md``).
* ``gateway-bench`` — run the open-loop multi-process sharded-gateway
  benchmark (BENCH_03): N worker processes deciding admissions against
  shared-memory histogram snapshots, gated on the per-shard decision
  logs replaying bit-identically through a single-process policy
  (see ``docs/gateway.md``).
* ``lint``     — run the project-aware static analysis (determinism,
  clock, RNG, lock and concurrency invariants; see
  ``docs/static_analysis.md``), with ``--baseline`` to fail only on new
  findings and ``--dynamic`` for the instrumented concurrency workloads
  (lock graph across threads and asyncio, event-loop stall watch,
  seqlock race harness, two-shard gateway fleet).
* ``info``     — print the reproduction's configuration: the Table 1 mix,
  the SLOs, the cluster shape, and the experiment-to-bench map.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Optional, Sequence

from . import __version__
from .bench import (CLUSTER_SCALE, cluster_config, cluster_policy_lineup,
                    cluster_slos, format_table, make_accept_fraction,
                    make_bouncer, make_bouncer_aa, make_bouncer_hu,
                    make_maxql, make_maxqwt, simulation_mix)
from .core import (GatekeeperConfig, GatekeeperPolicy, QCopConfig,
                   QCopPolicy)
from .exceptions import ReproError
from .liquid import run_cluster_simulation
from .sim import run_simulation

SIM_POLICIES = {
    "bouncer": lambda: make_bouncer(),
    "bouncer-aa": lambda: make_bouncer_aa(allowance=0.05),
    "bouncer-hu": lambda: make_bouncer_hu(alpha=1.0),
    "maxql": lambda: make_maxql(limit=400),
    "maxqwt": lambda: make_maxqwt(limit=0.015),
    "accept-fraction": lambda: make_accept_fraction(max_utilization=0.95),
    # Related-work comparators (paper §6 / future work §7).
    "gatekeeper": lambda: (lambda ctx: GatekeeperPolicy(
        ctx, GatekeeperConfig(max_outstanding_time=0.030))),
    "qcop": lambda: (lambda ctx: QCopPolicy(
        ctx, QCopConfig(timeout=0.050, learning_rate=0.2))),
}

CLUSTER_POLICIES = {
    "bouncer-aa": "Bouncer+AA",
    "bouncer-hu": "Bouncer+HU",
    "maxql": "MaxQL",
    "maxqwt": "MaxQWT",
    "accept-fraction": "AcceptFraction",
}

#: Broker policies runnable under ``repro chaos`` — the cluster line-up
#: plus plain Bouncer (with the cluster SLOs).
CHAOS_POLICIES = ("bouncer",) + tuple(CLUSTER_POLICIES)


def _chaos_policy_factory(name: str) -> Any:
    if name == "bouncer":
        return make_bouncer(slos=cluster_slos())
    return dict(cluster_policy_lineup())[CLUSTER_POLICIES[name]]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bouncer (SIGMOD 2024) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate",
                         help="single-host simulation study (paper §5.3)")
    sim.add_argument("--policy", choices=sorted(SIM_POLICIES),
                     default="bouncer")
    sim.add_argument("--factors", default="1.0,1.2,1.5",
                     help="comma-separated multiples of QPS_full_load")
    sim.add_argument("--queries", type=int, default=30_000)
    sim.add_argument("--parallelism", type=int, default=100)
    sim.add_argument("--seed", type=int, default=11)

    cluster = sub.add_parser(
        "cluster", help="broker/shard cluster study (paper §5.4)")
    cluster.add_argument("--policy", choices=sorted(CLUSTER_POLICIES),
                         default="bouncer-aa")
    cluster.add_argument("--rates", default="9000,27000,45000",
                         help="comma-separated scaled cluster rates")
    cluster.add_argument("--queries", type=int, default=10_000)
    cluster.add_argument("--seed", type=int, default=5)

    from .faults import NAMED_PLANS

    chaos = sub.add_parser(
        "chaos",
        help="run a fault plan against a policy (docs/fault_injection.md)")
    chaos.add_argument("--plan", choices=sorted(NAMED_PLANS),
                       default="shard-stall")
    chaos.add_argument("--policy", choices=CHAOS_POLICIES,
                       default="bouncer")
    chaos.add_argument("--rate", type=float, default=9000.0,
                       help="scaled cluster arrival rate (qps)")
    chaos.add_argument("--queries", type=int, default=18_000)
    chaos.add_argument("--warmup", type=int, default=2000)
    chaos.add_argument("--seed", type=int, default=5,
                       help="workload seed (both runs share it)")
    chaos.add_argument("--plan-seed", type=int, default=7,
                       help="fault plan RNG seed")
    chaos.add_argument("--threshold-ms", type=float, default=50.0,
                       help="SLO threshold for attainment (default: the "
                            "paper's p90 objective)")
    chaos.add_argument("--out", default=None,
                       help="also write the report to this file")

    bench = sub.add_parser(
        "bench",
        help="performance microbenchmarks + parallel experiment runner "
             "(docs/performance.md)")
    bench.add_argument("--quick", action="store_true",
                       help="reduced iteration counts (CI scale)")
    bench.add_argument("--out", default="BENCH_01.json",
                       help="aggregate JSON output path")
    bench.add_argument("--results-dir", default=None,
                       help="per-bench detail directory (default: "
                            "benchmarks/results/)")
    bench.add_argument("--jobs", type=int, default=0,
                       help="parallel runner worker processes "
                            "(0 = auto, 1 = sequential)")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON to gate against (exit 1 on "
                            "throughput regression)")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed fractional drop vs the baseline "
                            "(default 0.30)")
    bench.add_argument("--batch-out", default=None,
                       help="also run the BENCH_02 batch-admission burst "
                            "sweep (decide_many at bursts 1/8/64/256 vs "
                            "the scalar decide loop) and write its JSON "
                            "here")
    bench.add_argument("--batch-baseline", default=None,
                       help="BENCH_02 baseline JSON to gate batch-64 "
                            "decide_many throughput against (implies the "
                            "burst sweep; exit 1 on regression)")
    bench.add_argument("--sim", action="store_true",
                       help="run the BENCH_04 event-engine bench instead "
                            "of the decision microbenchmarks: event storm "
                            "(calendar vs classic heap), the end-to-end "
                            "Figure-6 cell, the cluster cell, and the "
                            "bit-identity differential guards")
    bench.add_argument("--sim-out", default="BENCH_04.json",
                       help="BENCH_04 aggregate JSON output path "
                            "(with --sim)")
    bench.add_argument("--sim-baseline", default=None,
                       help="BENCH_04 baseline JSON to gate fig06 "
                            "throughput against (implies --sim; the "
                            "differential bit-identity arms gate "
                            "unconditionally; exit 1 on regression)")
    bench.add_argument("--profile", default=None, metavar="PATH",
                       help="with --sim: additionally profile one "
                            "Figure-6 cell with cProfile, dump the raw "
                            "stats to PATH, and print the top "
                            "cumulative-time entries")

    gwbench = sub.add_parser(
        "gateway-bench",
        help="open-loop multi-process gateway benchmark with a "
             "bit-identity replay gate (docs/gateway.md)")
    gwbench.add_argument("--scale", choices=("quick", "full"),
                         default="full",
                         help="quick = CI smoke (reduced traffic, no QPS "
                              "floor); full = the BENCH_03 acceptance run")
    gwbench.add_argument("--out", default="BENCH_03.json",
                         help="aggregate JSON output path")
    gwbench.add_argument("--baseline", default=None,
                         help="BENCH_03 baseline JSON to gate achieved "
                              "QPS against (exit 1 on regression; the "
                              "replay bit-identity gate always runs)")
    gwbench.add_argument("--tolerance", type=float, default=None,
                         help="allowed fractional QPS drop vs the "
                              "baseline (default 0.30)")

    trace = sub.add_parser(
        "trace-report",
        help="summarize a JSONL decision trace (telemetry export)")
    trace.add_argument("path", help="trace file (one JSON event per line)")

    spans = sub.add_parser(
        "spans",
        help="span-trace a run and print the per-type critical-path "
             "breakdown (docs/observability.md)")
    spans.add_argument("--input", default=None,
                       help="load an exported span JSONL instead of "
                            "running a simulation")
    spans.add_argument("--policy", choices=sorted(SIM_POLICIES),
                       default="bouncer")
    spans.add_argument("--factor", type=float, default=1.2,
                       help="load as a multiple of QPS_full_load")
    spans.add_argument("--queries", type=int, default=8_000)
    spans.add_argument("--parallelism", type=int, default=100)
    spans.add_argument("--seed", type=int, default=11)
    spans.add_argument("--cluster", action="store_true",
                       help="run the broker/shard cluster model instead "
                            "of the single-host study")
    spans.add_argument("--rate", type=float, default=9000.0,
                       help="cluster arrival rate (qps; with --cluster)")
    spans.add_argument("--sample-rate", type=float, default=1.0,
                       help="deterministic span sampling rate in [0, 1]")
    spans.add_argument("--qtype", default=None,
                       help="restrict the report to one query type")
    spans.add_argument("--out", default=None,
                       help="also export the spans as JSONL")
    spans.add_argument("--chrome-out", default=None,
                       help="also export a Chrome trace-event JSON "
                            "(load in Perfetto / chrome://tracing)")

    calibrate = sub.add_parser(
        "calibrate-report",
        help="estimator calibration: predicted vs measured wait/response "
             "times + rejection attribution (docs/observability.md)")
    calibrate.add_argument("--trace", default=None,
                           help="replay an exported decision-trace JSONL "
                                "instead of running a simulation")
    calibrate.add_argument("--policy", choices=sorted(SIM_POLICIES),
                           default="bouncer")
    calibrate.add_argument("--factor", type=float, default=1.2,
                           help="load as a multiple of QPS_full_load")
    calibrate.add_argument("--queries", type=int, default=8_000)
    calibrate.add_argument("--parallelism", type=int, default=100)
    calibrate.add_argument("--seed", type=int, default=11)
    calibrate.add_argument("--window", type=int, default=None,
                           help="rolling window size per estimator series")
    calibrate.add_argument("--sample-rate", type=float, default=1.0,
                           help="deterministic join sampling rate in "
                                "[0, 1]")

    lint = sub.add_parser(
        "lint",
        help="project-aware static analysis (docs/static_analysis.md)")
    lint.add_argument("paths", nargs="*", default=[],
                      help="files or directories to lint (default: every "
                           "existing one of src, tests, benchmarks, "
                           "examples)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="output_format")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule names to run "
                           "(default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--dynamic", action="store_true",
                      help="also run the instrumented concurrency "
                           "workloads (lock graph, loopwatch, seqlock "
                           "race, 2-shard gateway)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="fail only on findings not recorded in FILE")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite --baseline FILE with the current "
                           "findings and exit 0")

    sub.add_parser("info", help="print the reproduction's configuration")
    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the §5.3 single-host study and print per-type outcome tables."""
    mix = simulation_mix()
    factory = SIM_POLICIES[args.policy]()
    full_load = mix.full_load_qps(args.parallelism)
    for raw in args.factors.split(","):
        factor = float(raw)
        report = run_simulation(mix, factory, rate_qps=factor * full_load,
                                num_queries=args.queries,
                                parallelism=args.parallelism,
                                seed=args.seed)
        rows = []
        for qtype in mix.type_names:
            stats = report.stats_for(qtype)
            rows.append([
                qtype,
                stats.received,
                f"{stats.rejection_pct:.2f}%",
                f"{stats.response.get(50.0, 0) * 1000:.2f}",
                f"{stats.response.get(90.0, 0) * 1000:.2f}",
            ])
        rows.append(["ALL", report.overall.received,
                     f"{report.overall.rejection_pct:.2f}%",
                     f"{report.overall.response.get(50.0, 0) * 1000:.2f}",
                     f"{report.overall.response.get(90.0, 0) * 1000:.2f}"])
        print(format_table(
            ["type", "received", "rejected", "rt_p50 (ms)", "rt_p90 (ms)"],
            rows,
            title=(f"{report.policy_name} @ {factor:.2f}x "
                   f"({factor * full_load:,.0f} qps), utilization "
                   f"{report.utilization:.1%}")))
        print()
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run the §5.4 cluster model and print per-type outcome tables."""
    config = cluster_config(seed=args.seed)
    factory = dict(cluster_policy_lineup())[CLUSTER_POLICIES[args.policy]]
    for raw in args.rates.split(","):
        rate = int(raw)
        report = run_cluster_simulation(config, factory, rate_qps=rate,
                                        num_queries=args.queries,
                                        seed=args.seed)
        rows = []
        for qtype in sorted(report.per_type,
                            key=lambda name: int(name[2:])):
            stats = report.per_type[qtype]
            rows.append([
                qtype, stats.received, f"{stats.rejection_pct:.2f}%",
                f"{stats.processing.get(50.0, 0) * 1000:.2f}",
                f"{stats.response.get(50.0, 0) * 1000:.2f}",
                f"{stats.response.get(90.0, 0) * 1000:.2f}",
            ])
        print(format_table(
            ["type", "received", "rejected", "pt_p50 (ms)", "rt_p50 (ms)",
             "rt_p90 (ms)"],
            rows,
            title=(f"{report.policy_name} @ {rate:,} qps "
                   f"(~{rate * CLUSTER_SCALE // 1000}K cluster-equivalent)"
                   f" — rejections: brokers {report.broker_rejections}, "
                   f"shards {report.shard_rejections}")))
        print()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a named fault plan on the cluster model and print the report."""
    from .faults import named_plan
    from .faults.chaos import render_chaos_table, run_chaos

    plan = named_plan(args.plan, seed=args.plan_seed)
    result = run_chaos(plan, _chaos_policy_factory(args.policy),
                       config=cluster_config(seed=args.seed),
                       rate_qps=args.rate, num_queries=args.queries,
                       warmup_queries=args.warmup, seed=args.seed,
                       threshold=args.threshold_ms / 1000.0)
    report = render_chaos_table(result)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf harness; optionally gate against a committed baseline."""
    import json

    from .bench.perf import (DEFAULT_TOLERANCE, SCALES, check_baseline,
                             check_batch_baseline, render_batch_summary,
                             render_summary, run_batch_bench, run_bench,
                             write_batch_results, write_results)
    from .bench.tables import results_dir

    mode = "quick" if args.quick else "full"
    if args.sim or args.sim_baseline:
        return _run_sim_bench(args, mode)
    if args.profile:
        print("bench: --profile requires --sim", file=sys.stderr)
        return 2
    document = run_bench(SCALES[mode], jobs=args.jobs, mode=mode)
    out_dir = args.results_dir if args.results_dir else str(results_dir())
    written = write_results(document, args.out, results_dir=out_dir)
    print(render_summary(document))
    batch_document = None
    if args.batch_out or args.batch_baseline:
        batch_document = run_batch_bench(SCALES[mode], mode=mode)
        written += write_batch_results(batch_document,
                                       args.batch_out or "BENCH_02.json")
        print()
        print(render_batch_summary(batch_document))
    print()
    for path in written:
        print(f"wrote {path}")
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)

    def gate(baseline_path: str, current: Any, checker: Any,
             label: str) -> int:
        try:
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 1
        problems = checker(current, baseline, tolerance=tolerance)
        if problems:
            for problem in problems:
                print(f"bench: REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"{label} baseline check passed ({baseline_path}, "
              f"tolerance {tolerance:.0%})")
        return 0

    failed = 0
    if args.baseline:
        failed |= gate(args.baseline, document, check_baseline, "BENCH_01")
    if args.batch_baseline:
        failed |= gate(args.batch_baseline, batch_document,
                       check_batch_baseline, "BENCH_02")
    return failed


def _run_sim_bench(args: argparse.Namespace, mode: str) -> int:
    """``repro bench --sim``: the BENCH_04 event-engine harness."""
    import json

    from .bench.sim_perf import (DEFAULT_TOLERANCE, SIM_SCALES,
                                 check_sim_baseline, profile_fig06,
                                 render_sim_summary, run_sim_bench,
                                 write_sim_results)

    scale = SIM_SCALES[mode]
    document = run_sim_bench(scale, mode=mode)
    written = write_sim_results(document, args.sim_out)
    print(render_sim_summary(document))
    if args.profile:
        print()
        print(profile_fig06(scale.diff_queries, args.profile,
                            seed=scale.fig06_seed,
                            warmup_queries=scale.fig06_warmup))
        written.append(args.profile)
    print()
    for path in written:
        print(f"wrote {path}")
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    baseline = None
    if args.sim_baseline:
        try:
            with open(args.sim_baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read baseline {args.sim_baseline}: "
                  f"{exc}", file=sys.stderr)
            return 1
    problems = check_sim_baseline(document, baseline, tolerance=tolerance)
    if problems:
        for problem in problems:
            print(f"bench: REGRESSION: {problem}", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"BENCH_04 baseline check passed ({args.sim_baseline}, "
              f"tolerance {tolerance:.0%})")
    return 0


def cmd_gateway_bench(args: argparse.Namespace) -> int:
    """Run the sharded-gateway bench; gate replay identity and QPS."""
    import json

    from .bench.gateway_perf import (DEFAULT_TOLERANCE, GATEWAY_SCALES,
                                     check_gateway_baseline,
                                     render_gateway_summary,
                                     run_gateway_bench,
                                     write_gateway_results)

    document = run_gateway_bench(GATEWAY_SCALES[args.scale],
                                 mode=args.scale)
    written = write_gateway_results(document, args.out)
    print(render_gateway_summary(document))
    print()
    for path in written:
        print(f"wrote {path}")
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"gateway-bench: cannot read baseline "
                  f"{args.baseline}: {exc}", file=sys.stderr)
            return 1
    problems = check_gateway_baseline(document, baseline,
                                      tolerance=tolerance)
    if problems:
        for problem in problems:
            print(f"gateway-bench: REGRESSION: {problem}",
                  file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"BENCH_03 baseline check passed ({args.baseline}, "
              f"tolerance {tolerance:.0%})")
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    """Summarize an exported decision trace into the §5-style tables."""
    from .telemetry import render_trace_report, summarize_trace

    try:
        summary = summarize_trace(args.path)
    except OSError as exc:
        print(f"trace-report: cannot read {args.path}: {exc}",
              file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 1
    if not summary.events:
        print(f"trace-report: {args.path} holds no trace events",
              file=sys.stderr)
        return 1
    print(render_trace_report(summary))
    return 0


def _make_span_telemetry(sample_rate: float, spans: bool = True,
                         calibration: bool = False,
                         window: Optional[int] = None) -> Any:
    """Build a ``Telemetry`` facade for the observability CLI commands."""
    from .telemetry import (CalibrationTracker, MetricsRegistry,
                            SpanRecorder, Telemetry)

    kwargs = {}
    if spans:
        kwargs["spans"] = SpanRecorder(sample_rate=sample_rate)
    if calibration:
        cal_kwargs = {"sample_rate": sample_rate}
        if window is not None:
            cal_kwargs["window"] = window
        kwargs["calibration"] = CalibrationTracker(**cal_kwargs)
    return Telemetry(registry=MetricsRegistry(), **kwargs)


def _check_sample_rate(rate: float) -> Optional[str]:
    if not 0.0 <= rate <= 1.0:
        return f"sample rate must be within [0, 1], got {rate}"
    return None


def cmd_spans(args: argparse.Namespace) -> int:
    """Span-trace a run (or load an export) and print the breakdown."""
    from .telemetry import (load_spans_jsonl, render_chrome_trace,
                            render_span_report, summarize_spans)

    if args.input is not None:
        try:
            spans = load_spans_jsonl(args.input)
        except OSError as exc:
            print(f"spans: cannot read {args.input}: {exc}",
                  file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"spans: {exc}", file=sys.stderr)
            return 1
        title = args.input
    else:
        problem = _check_sample_rate(args.sample_rate)
        if problem:
            print(f"spans: {problem}", file=sys.stderr)
            return 2
        telemetry = _make_span_telemetry(args.sample_rate)
        if args.cluster:
            if args.policy not in CHAOS_POLICIES:
                print(f"spans: policy {args.policy!r} has no cluster "
                      f"line-up entry (choose from "
                      f"{', '.join(CHAOS_POLICIES)})", file=sys.stderr)
                return 2
            run_cluster_simulation(
                cluster_config(seed=args.seed),
                _chaos_policy_factory(args.policy), rate_qps=args.rate,
                num_queries=args.queries, seed=args.seed,
                telemetry=telemetry)
            title = (f"{args.policy} cluster @ {args.rate:,.0f} qps, "
                     f"seed {args.seed}")
        else:
            mix = simulation_mix()
            rate = args.factor * mix.full_load_qps(args.parallelism)
            run_simulation(mix, SIM_POLICIES[args.policy](),
                           rate_qps=rate, num_queries=args.queries,
                           parallelism=args.parallelism, seed=args.seed,
                           telemetry=telemetry)
            title = (f"{args.policy} @ {args.factor:.2f}x "
                     f"({rate:,.0f} qps), seed {args.seed}")
        recorder = telemetry.spans
        assert recorder is not None
        if args.out:
            recorder.export_jsonl(args.out)
            print(f"wrote {args.out}")
        spans = recorder.spans()
    if args.qtype is not None:
        keep = {s.trace_id for s in spans if s.qtype == args.qtype}
        spans = [s for s in spans if s.trace_id in keep]
    if not spans:
        print("spans: no spans recorded (is the sample rate 0, or the "
              "qtype filter empty?)", file=sys.stderr)
        return 1
    if args.chrome_out:
        with open(args.chrome_out, "w", encoding="utf-8") as fh:
            fh.write(render_chrome_trace(spans))
        print(f"wrote {args.chrome_out} (load in Perfetto or "
              f"chrome://tracing)")
    print(render_span_report(summarize_spans(spans), title=title))
    return 0


def cmd_calibrate_report(args: argparse.Namespace) -> int:
    """Join Eq. 2/3/4 estimates to measurements and print the tables."""
    from .telemetry import (calibration_from_events, load_jsonl,
                            render_calibration_report)

    if args.trace is not None:
        try:
            events = load_jsonl(args.trace)
        except OSError as exc:
            print(f"calibrate-report: cannot read {args.trace}: {exc}",
                  file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"calibrate-report: {exc}", file=sys.stderr)
            return 1
        kwargs = {}
        if args.window is not None:
            kwargs["window"] = args.window
        tracker = calibration_from_events(events, **kwargs)
        title = args.trace
    else:
        problem = _check_sample_rate(args.sample_rate)
        if problem:
            print(f"calibrate-report: {problem}", file=sys.stderr)
            return 2
        telemetry = _make_span_telemetry(args.sample_rate, spans=False,
                                         calibration=True,
                                         window=args.window)
        mix = simulation_mix()
        rate = args.factor * mix.full_load_qps(args.parallelism)
        run_simulation(mix, SIM_POLICIES[args.policy](),
                       rate_qps=rate, num_queries=args.queries,
                       parallelism=args.parallelism, seed=args.seed,
                       telemetry=telemetry)
        tracker = telemetry.calibration
        assert tracker is not None
        title = (f"{args.policy} @ {args.factor:.2f}x ({rate:,.0f} qps), "
                 f"seed {args.seed}")
    if not tracker.qtypes() and not tracker.rejected_total:
        print("calibrate-report: no decisions joined (does the trace "
              "carry estimates, or is the sample rate 0?)",
              file=sys.stderr)
        return 1
    print(render_calibration_report(tracker, title=title))
    return 0


#: Directories ``repro lint`` covers when no paths are given; missing
#: ones are skipped so the default works in partial checkouts.
LINT_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static rules (and optionally the dynamic checks)."""
    from .analysis import (LintConfig, available_rules, filter_baseline,
                           lint_paths, load_baseline, render_json,
                           render_text, write_baseline)

    if args.list_rules:
        for name, description in available_rules().items():
            print(f"{name}: {description}")
        return 0
    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",")
                  if part.strip()}
        unknown = select - set(available_rules())
        if unknown:
            print(f"lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    paths = args.paths or [path for path in LINT_DEFAULT_PATHS
                           if os.path.exists(path)]
    config = LintConfig(select=select)
    violations, checked = lint_paths(paths, config)
    if args.update_baseline:
        if not args.baseline:
            print("lint: --update-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        write_baseline(args.baseline, violations)
        print(f"lint: recorded {len(violations)} finding(s) in "
              f"{args.baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"lint: cannot read baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        violations = filter_baseline(violations, baseline)
    if args.output_format == "json":
        print(render_json(violations, checked))
    else:
        print(render_text(violations, checked))
    failed = bool(violations)
    if args.dynamic:
        from .analysis.dynamic import render_check_report, run_dynamic_check

        result = run_dynamic_check()
        print(render_check_report(result))
        failed = failed or not result.ok()
    return 1 if failed else 0


def cmd_info() -> int:
    """Print the reproduction's workload, SLO, and cluster configuration."""
    mix = simulation_mix()
    config = cluster_config()
    print(f"repro {__version__} — reproduction of 'Bouncer: Admission "
          f"Control with Response Time Objectives' (SIGMOD 2024)")
    print()
    rows = [[spec.name, f"{spec.proportion:.0%}",
             f"{spec.mean * 1000:.2f}", f"{spec.median * 1000:.2f}",
             f"{spec.p90 * 1000:.2f}"] for spec in mix]
    print(format_table(
        ["type", "mix", "pt_mean (ms)", "pt_p50 (ms)", "pt_p90 (ms)"],
        rows, title="Simulation workload (paper Table 1)"))
    print()
    print(f"SLOs: p50 = 18ms, p90 = 50ms for every type (paper Table 2)")
    print(f"QPS_full_load (P=100): {mix.full_load_qps(100):,.0f}")
    print()
    print(f"Cluster model: {config.num_brokers} brokers x "
          f"{config.broker_processes} engines, {config.num_shards} shards "
          f"x {config.shard_processes} cores "
          f"(paper's 12/16 cluster scaled {CLUSTER_SCALE}x down)")
    print()
    print("Benchmark harness: pytest benchmarks/ --benchmark-only")
    print("Experiment map: DESIGN.md section 3; measured outcomes: "
          "EXPERIMENTS.md")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "simulate":
            return cmd_simulate(args)
        if args.command == "cluster":
            return cmd_cluster(args)
        if args.command == "chaos":
            return cmd_chaos(args)
        if args.command == "bench":
            return cmd_bench(args)
        if args.command == "gateway-bench":
            return cmd_gateway_bench(args)
        if args.command == "trace-report":
            return cmd_trace_report(args)
        if args.command == "spans":
            return cmd_spans(args)
        if args.command == "calibrate-report":
            return cmd_calibrate_report(args)
        if args.command == "lint":
            return cmd_lint(args)
        return cmd_info()
    except BrokenPipeError:
        # ``repro ... | head`` closes stdout early; exit quietly instead
        # of dumping a traceback.  Detach stdout so the interpreter's
        # shutdown flush cannot raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
